package alias

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// normalize returns weights scaled to sum 1.
func normalize(w []float64) []float64 {
	var sum float64
	for _, v := range w {
		sum += v
	}
	p := make([]float64, len(w))
	for i, v := range w {
		p[i] = v / sum
	}
	return p
}

// empirical draws n samples and returns the relative frequencies.
func empirical(t *Table, r *rng.RNG, n int) []float64 {
	freq := make([]float64, t.N())
	for i := 0; i < n; i++ {
		freq[t.Draw(r)]++
	}
	for i := range freq {
		freq[i] /= float64(n)
	}
	return freq
}

// TestTableDistributions property-tests the alias construction against
// randomly generated weight vectors: the empirical draw distribution must
// be close to the source distribution both in total-variation distance
// and under a chi-square goodness-of-fit statistic.
func TestTableDistributions(t *testing.T) {
	r := rng.New(7)
	const draws = 200000
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(60)
		w := make([]float64, n)
		for i := range w {
			// Heavy-tailed weights, like count+prior sampler inputs: many
			// tiny entries, a few dominant ones.
			w[i] = math.Pow(r.Float64Open(), 4) * 100
			if r.Intn(4) == 0 {
				w[i] = 0 // zero-weight outcomes must never be drawn alone
			}
		}
		w[r.Intn(n)] += 50 // ensure a positive sum and a dominant entry
		tab := New(w)
		p := normalize(w)

		// Prob must reproduce the normalized weights exactly.
		for i := range w {
			if got := tab.Prob(i); math.Abs(got-p[i]) > 1e-15 {
				t.Fatalf("trial %d: Prob(%d) = %g, want %g", trial, i, got, p[i])
			}
		}

		freq := empirical(tab, r, draws)
		// Total-variation distance: 0.5 * sum |p - q|. With 2e5 draws the
		// expected TV is well under 1e-2 for n <= 62.
		var tv float64
		for i := range p {
			tv += math.Abs(freq[i] - p[i])
		}
		tv /= 2
		if tv > 0.012 {
			t.Errorf("trial %d (n=%d): TV distance %g too large", trial, n, tv)
		}

		// Chi-square statistic over outcomes with enough expected mass.
		// Under H0 it concentrates around its degrees of freedom; 3x dof is
		// far beyond any plausible statistical fluctuation at this sample
		// size and flags a construction bug rather than noise.
		var chi2 float64
		dof := 0
		for i := range p {
			exp := p[i] * draws
			if exp < 5 {
				continue
			}
			d := freq[i]*draws - exp
			chi2 += d * d / exp
			dof++
		}
		if dof > 0 && chi2 > 3*float64(dof)+30 {
			t.Errorf("trial %d (n=%d): chi-square %g with %d dof", trial, n, chi2, dof)
		}

		// Zero-weight outcomes must never appear.
		for i := range w {
			if w[i] == 0 && freq[i] != 0 {
				t.Errorf("trial %d: outcome %d has zero weight but frequency %g", trial, i, freq[i])
			}
		}
	}
}

// TestTableDegenerate pins the single-outcome and delta-distribution
// cases.
func TestTableDegenerate(t *testing.T) {
	r := rng.New(1)
	one := New([]float64{3.5})
	for i := 0; i < 100; i++ {
		if one.Draw(r) != 0 {
			t.Fatal("single-outcome table drew a nonexistent outcome")
		}
	}
	delta := New([]float64{0, 0, 7, 0})
	for i := 0; i < 1000; i++ {
		if got := delta.Draw(r); got != 2 {
			t.Fatalf("delta table drew %d, want 2", got)
		}
	}
	if delta.Prob(2) != 1 || delta.Prob(0) != 0 {
		t.Fatalf("delta table Prob wrong: %g / %g", delta.Prob(2), delta.Prob(0))
	}
}

// TestTableDeterministic pins that identical weights and an identical RNG
// stream give identical draw sequences — the property the sampler's
// bit-reproducibility rests on.
func TestTableDeterministic(t *testing.T) {
	w := []float64{1, 2, 3, 4, 5, 0.5, 9}
	a, b := New(w), New(w)
	ra, rb := rng.New(42), rng.New(42)
	for i := 0; i < 5000; i++ {
		if x, y := a.Draw(ra), b.Draw(rb); x != y {
			t.Fatalf("draw %d diverged: %d vs %d", i, x, y)
		}
	}
}

// TestTableRebuild pins that an in-place Rebuild is indistinguishable
// from a fresh New: same prob/alias layout, same draw sequence, and the
// old distribution leaves no trace.
func TestTableRebuild(t *testing.T) {
	r := rng.New(11)
	for trial := 0; trial < 10; trial++ {
		n := 2 + r.Intn(40)
		w1 := make([]float64, n)
		w2 := make([]float64, n)
		for i := range w1 {
			w1[i] = r.Float64() * 10
			w2[i] = r.Float64() * 10
		}
		w1[0]++ // positive sums
		w2[0]++
		reused := New(w1)
		reused.Rebuild(w2)
		fresh := New(w2)
		if reused.Sum() != fresh.Sum() {
			t.Fatalf("trial %d: Rebuild sum %g != New sum %g", trial, reused.Sum(), fresh.Sum())
		}
		for i := 0; i < n; i++ {
			if reused.Prob(i) != fresh.Prob(i) {
				t.Fatalf("trial %d: Prob(%d) diverges after Rebuild", trial, i)
			}
		}
		ra, rb := rng.New(uint64(trial)), rng.New(uint64(trial))
		for i := 0; i < 2000; i++ {
			if x, y := reused.Draw(ra), fresh.Draw(rb); x != y {
				t.Fatalf("trial %d: draw %d diverged after Rebuild: %d vs %d", trial, i, x, y)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Rebuild with mismatched length did not panic")
		}
	}()
	New([]float64{1, 2}).Rebuild([]float64{1, 2, 3})
}

// TestTableSum checks Sum and that probabilities total 1.
func TestTableSum(t *testing.T) {
	w := []float64{2, 0, 1, 7}
	tab := New(w)
	if tab.Sum() != 10 {
		t.Fatalf("Sum = %g, want 10", tab.Sum())
	}
	var tot float64
	for i := range w {
		tot += tab.Prob(i)
	}
	if math.Abs(tot-1) > 1e-12 {
		t.Fatalf("Prob sums to %g", tot)
	}
}

// TestTablePanics pins the documented construction panics.
func TestTablePanics(t *testing.T) {
	for _, tc := range [][]float64{
		{},
		{0, 0, 0},
		{1, -1},
		{math.NaN()},
		{math.Inf(1)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%v) did not panic", tc)
				}
			}()
			New(tc)
		}()
	}
}
