// Package alias implements Vose's alias method for O(1) draws from a
// fixed discrete distribution. The CPD E-step uses it as the proposal
// substrate of the Metropolis–Hastings samplers (core's "alias" sampler,
// LightLDA/WarpLDA lineage): a table is built once per sweep from the
// sweep-start counters, draws during the sweep cost two uniforms each,
// and the staleness of the table relative to the moving counters is
// corrected by the MH acceptance step — which needs the proposal density,
// so the table keeps its source weights and exposes them through Prob.
package alias

import (
	"math"

	"repro/internal/rng"
)

// Table is an alias table over n weighted outcomes. Build with New; a
// built table is safe for concurrent Draw/Prob use (every method is
// read-only — the RNG passed to Draw carries all mutable state). Rebuild
// refills it in place and must not race with readers.
type Table struct {
	n      int
	prob   []float64 // per-column acceptance threshold in [0, 1]
	alias  []int32   // per-column fallback outcome
	weight []float64 // source weights (copied), kept for Prob
	sum    float64
	work   []int32 // build worklists (small grows up, large grows down)
}

// New builds an alias table from the given non-negative weights in O(n)
// (Vose's two-worklist construction). It panics on an empty slice, a
// negative or NaN weight, or a non-positive or infinite total — the
// sampler feeds it count-plus-prior weights, which are always positive
// and finite, so any of these is a programming error.
//
// The table is built in three allocations: the struct, one float64 block
// (weights + acceptance thresholds), one int32 block (aliases + build
// worklists) — the E-step builds one table per touched word per sweep,
// so construction cost is on the sampler's hot path.
func New(weights []float64) *Table {
	n := len(weights)
	if n == 0 {
		panic("alias: New with no weights")
	}
	f := make([]float64, 2*n)
	ints := make([]int32, 2*n)
	t := &Table{
		n:      n,
		weight: f[:n:n],
		prob:   f[n:],
		alias:  ints[:n:n],
		work:   ints[n:],
	}
	copy(t.weight, weights)
	t.build()
	return t
}

// Rebuild refills the table in place from a new weight vector of the same
// length, with no allocations. It must not be called concurrently with
// Draw/Prob on the same table — the sampler rebuilds its per-sweep tables
// between sweeps, when no worker holds them. Panics like New on a length
// mismatch or invalid weights.
func (t *Table) Rebuild(weights []float64) {
	if len(weights) != t.n {
		panic("alias: Rebuild with mismatched length")
	}
	copy(t.weight, weights)
	t.build()
}

// build fills prob/alias/sum from t.weight (Vose). The scaled weights
// live directly in t.prob: the worklist loop finalises prob[s] exactly
// when it consumes scaled[s], so the two arrays can share storage and the
// build needs no scratch floats.
func (t *Table) build() {
	n := t.n
	var sum float64
	for _, w := range t.weight {
		if w < 0 || math.IsNaN(w) {
			panic("alias: negative or NaN weight")
		}
		sum += w
	}
	if sum <= 0 || math.IsInf(sum, 0) {
		panic("alias: weights need a positive finite sum")
	}
	t.sum = sum

	// Scale every weight so the mean column holds exactly 1: columns under
	// the mean (small) borrow their slack from columns over it (large).
	// The two worklists share one length-n block — each outcome is on at
	// most one list at a time.
	scaled := t.prob
	work := t.work
	nSmall, nLarge := 0, 0
	scale := float64(n) / sum
	for i, w := range t.weight {
		scaled[i] = w * scale
		if scaled[i] < 1 {
			work[nSmall] = int32(i)
			nSmall++
		} else {
			nLarge++
			work[n-nLarge] = int32(i)
		}
	}
	for nSmall > 0 && nLarge > 0 {
		s := work[nSmall-1]
		nSmall--
		l := work[n-nLarge]
		nLarge--
		// prob[s] already holds scaled[s]: finalise by aliasing to l.
		t.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			work[nSmall] = l
			nSmall++
		} else {
			nLarge++
			work[n-nLarge] = l
		}
	}
	// Leftovers on either list hold (numerically) exactly 1: no alias.
	for ; nLarge > 0; nLarge-- {
		l := work[n-nLarge]
		t.prob[l] = 1
		t.alias[l] = l
	}
	for ; nSmall > 0; nSmall-- {
		s := work[nSmall-1]
		t.prob[s] = 1
		t.alias[s] = s
	}
}

// N returns the number of outcomes.
func (t *Table) N() int { return t.n }

// Sum returns the total source weight.
func (t *Table) Sum() float64 { return t.sum }

// Prob returns the probability of outcome i under the table's
// distribution, weight_i / sum — the proposal density q(i) the MH
// acceptance ratio needs, in O(1).
func (t *Table) Prob(i int) float64 { return t.weight[i] / t.sum }

// Draw samples one outcome: a uniform column, then the column's own
// outcome or its alias. Exactly one Intn and one Float64 are consumed
// per call, so draw sequences are deterministic per RNG stream.
func (t *Table) Draw(r *rng.RNG) int {
	i := r.Intn(t.n)
	if r.Float64() < t.prob[i] {
		return i
	}
	return int(t.alias[i])
}
