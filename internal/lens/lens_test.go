package lens

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/synth"
)

var (
	once sync.Once
	srv  *Server
	bare *Server // no vocabulary
)

func testServer(t *testing.T) (*Server, *Server) {
	t.Helper()
	once.Do(func() {
		cfg := synth.TwitterLike(150, 77)
		g, _ := synth.Generate(cfg)
		m, _, err := core.Train(g, core.Config{
			NumCommunities: 8, NumTopics: 10, EMIters: 8, Workers: 1,
			Seed: 2, Rho: 0.125,
		})
		if err != nil {
			panic(err)
		}
		srv = New(serve.New(m, synth.BuildVocabulary(cfg), serve.Options{}))
		bare = New(serve.New(m, nil, serve.Options{}))
	})
	return srv, bare
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestIndexPage(t *testing.T) {
	s, _ := testServer(t)
	rec := get(t, s, "/")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "SocialLens") {
		t.Fatalf("index: code=%d", rec.Code)
	}
	if get(t, s, "/nope").Code != http.StatusNotFound {
		t.Fatal("unknown path not 404")
	}
}

func TestCommunitiesEndpoint(t *testing.T) {
	s, _ := testServer(t)
	rec := get(t, s, "/api/communities")
	if rec.Code != http.StatusOK {
		t.Fatalf("code %d", rec.Code)
	}
	var out []map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 8 {
		t.Fatalf("got %d communities", len(out))
	}
	// Sorted by member count descending.
	prev := int(out[0]["members"].(float64))
	for _, c := range out[1:] {
		cur := int(c["members"].(float64))
		if cur > prev {
			t.Fatal("communities not sorted by size")
		}
		prev = cur
	}
}

func TestCommunityDetail(t *testing.T) {
	s, _ := testServer(t)
	rec := get(t, s, "/api/community?id=0")
	if rec.Code != http.StatusOK {
		t.Fatalf("code %d: %s", rec.Code, rec.Body.String())
	}
	var d map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &d); err != nil {
		t.Fatal(err)
	}
	if _, ok := d["topTopics"]; !ok {
		t.Fatal("detail missing topTopics")
	}
	if _, ok := d["outFlows"]; !ok {
		t.Fatal("detail missing outFlows")
	}
	for _, bad := range []string{"/api/community", "/api/community?id=99", "/api/community?id=x"} {
		if get(t, s, bad).Code != http.StatusBadRequest {
			t.Fatalf("%s not rejected", bad)
		}
	}
}

func TestRankEndpoint(t *testing.T) {
	s, b := testServer(t)
	// A real vocabulary word.
	rec := get(t, s, "/api/rank?q=network_00&k=3")
	if rec.Code != http.StatusOK {
		t.Fatalf("code %d: %s", rec.Code, rec.Body.String())
	}
	var out []map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("got %d results", len(out))
	}
	if get(t, s, "/api/rank").Code != http.StatusBadRequest {
		t.Fatal("empty query accepted")
	}
	if get(t, s, "/api/rank?q=zzzz-unknown").Code != http.StatusBadRequest {
		t.Fatal("unknown word accepted")
	}
	if get(t, b, "/api/rank?q=x").Code != http.StatusNotImplemented {
		t.Fatal("vocab-less rank should be 501")
	}
}

func TestStatsEndpoint(t *testing.T) {
	s, _ := testServer(t)
	rec := get(t, s, "/api/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("code %d", rec.Code)
	}
	var stats map[string]map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if _, ok := stats["rank"]; !ok {
		t.Fatal("stats missing rank endpoint")
	}
}

func TestGraphEndpoint(t *testing.T) {
	s, _ := testServer(t)
	rec := get(t, s, "/api/graph")
	if rec.Code != http.StatusOK {
		t.Fatalf("code %d", rec.Code)
	}
	var dg map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &dg); err != nil {
		t.Fatal(err)
	}
	if dg["Edges"] == nil {
		t.Fatal("graph missing edges")
	}
	dot := get(t, s, "/api/graph?topic=0&format=dot")
	if dot.Code != http.StatusOK || !strings.HasPrefix(dot.Body.String(), "digraph") {
		t.Fatalf("dot export: code=%d", dot.Code)
	}
	if get(t, s, "/api/graph?topic=999").Code != http.StatusBadRequest {
		t.Fatal("bad topic accepted")
	}
}
