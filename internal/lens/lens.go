// Package lens is the reproduction of the paper's SocialLens companion
// system (footnote 1 / reference [4]): an interactive service for browsing
// communities by both content and interaction. It serves a trained CPD
// model over HTTP: community summaries (content profile, attribute
// profile, openness, members), profile-driven ranking for free-text
// queries (Eq. 19) and the Fig. 7 diffusion graphs, plus a minimal
// embedded browser page. Everything is stdlib net/http.
package lens

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/corpus"
)

// Server wires a trained model (and optional vocabulary) into an
// http.Handler.
type Server struct {
	model *core.Model
	vocab *corpus.Vocabulary
	mux   *http.ServeMux

	members  [][]int
	openness []int
}

// New builds the server. vocab may be nil (numeric labels only; text
// queries disabled).
func New(model *core.Model, vocab *corpus.Vocabulary) *Server {
	s := &Server{
		model:    model,
		vocab:    vocab,
		mux:      http.NewServeMux(),
		members:  model.CommunityMembers(5),
		openness: apps.Openness(model),
	}
	s.mux.HandleFunc("/", s.handleIndex)
	s.mux.HandleFunc("/api/communities", s.handleCommunities)
	s.mux.HandleFunc("/api/community", s.handleCommunity)
	s.mux.HandleFunc("/api/rank", s.handleRank)
	s.mux.HandleFunc("/api/graph", s.handleGraph)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// communitySummary is the list-view payload.
type communitySummary struct {
	ID       int     `json:"id"`
	Label    string  `json:"label"`
	Members  int     `json:"members"`
	Openness int     `json:"openness"`
	SelfDiff float64 `json:"selfDiffusion"`
}

func (s *Server) handleCommunities(w http.ResponseWriter, r *http.Request) {
	C := s.model.Cfg.NumCommunities
	out := make([]communitySummary, C)
	for c := 0; c < C; c++ {
		var selfD float64
		for z := 0; z < s.model.Cfg.NumTopics; z++ {
			selfD += s.model.Eta.At(c, c, z)
		}
		out[c] = communitySummary{
			ID:       c,
			Label:    apps.CommunityLabel(s.model, s.vocab, c, 3),
			Members:  len(s.members[c]),
			Openness: s.openness[c],
			SelfDiff: selfD,
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Members > out[j].Members })
	s.writeJSON(w, out)
}

// communityDetail is the drill-down payload: the full profile triple.
type communityDetail struct {
	communitySummary
	TopTopics     []topicShare  `json:"topTopics"`
	TopAttributes []int         `json:"topAttributes,omitempty"`
	OutFlows      []flowSummary `json:"outFlows"`
	InFlows       []flowSummary `json:"inFlows"`
	MemberSample  []int         `json:"memberSample"`
}

type topicShare struct {
	Topic int      `json:"topic"`
	Share float64  `json:"share"`
	Words []string `json:"words,omitempty"`
}

type flowSummary struct {
	Community int     `json:"community"`
	Topic     int     `json:"topic"`
	Strength  float64 `json:"strength"`
}

func (s *Server) handleCommunity(w http.ResponseWriter, r *http.Request) {
	c, err := strconv.Atoi(r.URL.Query().Get("id"))
	if err != nil || c < 0 || c >= s.model.Cfg.NumCommunities {
		http.Error(w, "bad or missing community id", http.StatusBadRequest)
		return
	}
	m := s.model
	detail := communityDetail{}
	detail.ID = c
	detail.Label = apps.CommunityLabel(m, s.vocab, c, 3)
	detail.Members = len(s.members[c])
	detail.Openness = s.openness[c]

	theta := m.Theta.Row(c)
	for _, z := range topKf(theta, 3) {
		ts := topicShare{Topic: z, Share: theta[z]}
		if s.vocab != nil {
			for _, wid := range m.TopWords(z, 4) {
				ts.Words = append(ts.Words, s.vocab.Word(wid))
			}
		}
		detail.TopTopics = append(detail.TopTopics, ts)
	}
	detail.TopAttributes = m.TopAttributes(c, 5)

	// Strongest topic-specific flows out of and into c.
	type flow struct {
		c2, z int
		v     float64
	}
	var outs, ins []flow
	for c2 := 0; c2 < m.Cfg.NumCommunities; c2++ {
		for z := 0; z < m.Cfg.NumTopics; z++ {
			if v := m.Eta.At(c, c2, z); v > 0 {
				outs = append(outs, flow{c2, z, v})
			}
			if v := m.Eta.At(c2, c, z); v > 0 {
				ins = append(ins, flow{c2, z, v})
			}
		}
	}
	sort.Slice(outs, func(i, j int) bool { return outs[i].v > outs[j].v })
	sort.Slice(ins, func(i, j int) bool { return ins[i].v > ins[j].v })
	for i := 0; i < 5 && i < len(outs); i++ {
		detail.OutFlows = append(detail.OutFlows, flowSummary{outs[i].c2, outs[i].z, outs[i].v})
	}
	for i := 0; i < 5 && i < len(ins); i++ {
		detail.InFlows = append(detail.InFlows, flowSummary{ins[i].c2, ins[i].z, ins[i].v})
	}
	sample := s.members[c]
	if len(sample) > 10 {
		sample = sample[:10]
	}
	detail.MemberSample = append(detail.MemberSample, sample...)
	s.writeJSON(w, detail)
}

// rankResult is one Eq. 19 ranking entry.
type rankResult struct {
	Community int     `json:"community"`
	Label     string  `json:"label"`
	Score     float64 `json:"score"`
	Members   int     `json:"members"`
}

func (s *Server) handleRank(w http.ResponseWriter, r *http.Request) {
	q := strings.TrimSpace(r.URL.Query().Get("q"))
	if q == "" {
		http.Error(w, "missing q parameter", http.StatusBadRequest)
		return
	}
	if s.vocab == nil {
		http.Error(w, "server has no vocabulary; text queries disabled", http.StatusNotImplemented)
		return
	}
	ranked, err := apps.RankCommunitiesText(s.model, s.vocab, corpus.Pipeline{MinDocTokens: 1}, q)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	k := 10
	if kq := r.URL.Query().Get("k"); kq != "" {
		if v, err := strconv.Atoi(kq); err == nil && v > 0 {
			k = v
		}
	}
	if k > len(ranked) {
		k = len(ranked)
	}
	out := make([]rankResult, k)
	for i := 0; i < k; i++ {
		c := ranked[i].Community
		out[i] = rankResult{
			Community: c,
			Label:     apps.CommunityLabel(s.model, s.vocab, c, 3),
			Score:     ranked[i].Score,
			Members:   len(s.members[c]),
		}
	}
	s.writeJSON(w, out)
}

func (s *Server) handleGraph(w http.ResponseWriter, r *http.Request) {
	topic := -1
	if tq := r.URL.Query().Get("topic"); tq != "" {
		v, err := strconv.Atoi(tq)
		if err != nil || v < -1 || v >= s.model.Cfg.NumTopics {
			http.Error(w, "bad topic", http.StatusBadRequest)
			return
		}
		topic = v
	}
	dg := apps.BuildDiffusionGraph(s.model, s.vocab, topic)
	switch r.URL.Query().Get("format") {
	case "dot":
		w.Header().Set("Content-Type", "text/vnd.graphviz")
		if err := dg.WriteDOT(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	default:
		s.writeJSON(w, dg)
	}
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, indexHTML)
}

func topKf(xs []float64, k int) []int {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return xs[idx[i]] > xs[idx[j]] })
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}

// indexHTML is a minimal single-page browser over the API.
const indexHTML = `<!DOCTYPE html>
<html><head><title>SocialLens — community profiles</title>
<style>
body{font-family:sans-serif;margin:2em;max-width:60em}
table{border-collapse:collapse}td,th{border:1px solid #ccc;padding:4px 8px;text-align:left}
input{padding:4px;width:20em}pre{background:#f6f6f6;padding:1em;overflow:auto}
</style></head><body>
<h1>SocialLens</h1>
<p>Browse communities by content and interaction (CPD profiles).</p>
<p><input id="q" placeholder="query, e.g. a campaign keyword"> <button onclick="rank()">rank communities</button></p>
<div id="out"></div>
<script>
async function load(){
  const cs = await (await fetch('/api/communities')).json();
  render('<h2>Communities</h2>', cs);
}
async function rank(){
  const q = document.getElementById('q').value;
  const r = await fetch('/api/rank?q='+encodeURIComponent(q));
  if(!r.ok){document.getElementById('out').textContent = await r.text();return;}
  render('<h2>Top communities for "'+q+'"</h2>', await r.json());
}
function render(title, rows){
  if(!rows.length){document.getElementById('out').textContent='no data';return;}
  const cols = Object.keys(rows[0]);
  let h = title+'<table><tr>'+cols.map(c=>'<th>'+c+'</th>').join('')+'</tr>';
  for(const row of rows){h += '<tr>'+cols.map(c=>'<td>'+JSON.stringify(row[c])+'</td>').join('')+'</tr>';}
  document.getElementById('out').innerHTML = h+'</table>';
}
load();
</script></body></html>
`
