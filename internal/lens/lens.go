// Package lens is the reproduction of the paper's SocialLens companion
// system (footnote 1 / reference [4]): an interactive service for browsing
// communities by both content and interaction. It is a thin HTTP/HTML
// facade over serve.Engine — community summaries (content profile,
// attribute profile, openness, members), profile-driven ranking for
// free-text queries (Eq. 19) and the Fig. 7 diffusion graphs, plus a
// minimal embedded browser page. The lens owns no model state: the engine
// holds the live snapshot, so a hot-swap (serve.Engine.Reload) propagates
// to the lens without restarting it. Everything is stdlib net/http.
package lens

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"repro/internal/apps"
	"repro/internal/serve"
)

// Server wires a serve.Engine into an http.Handler.
type Server struct {
	engine *serve.Engine
	mux    *http.ServeMux
}

// New builds the server over an engine (see serve.New; the engine's
// snapshot may or may not carry a vocabulary — without one, labels are
// numeric and text queries answer 501).
func New(engine *serve.Engine) *Server {
	s := &Server{engine: engine, mux: http.NewServeMux()}
	s.mux.HandleFunc("/", s.handleIndex)
	s.mux.HandleFunc("/api/communities", s.handleCommunities)
	s.mux.HandleFunc("/api/community", s.handleCommunity)
	s.mux.HandleFunc("/api/rank", s.handleRank)
	s.mux.HandleFunc("/api/graph", s.handleGraph)
	s.mux.HandleFunc("/api/stats", s.handleStats)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleCommunities(w http.ResponseWriter, r *http.Request) {
	out := s.engine.Communities()
	sort.Slice(out, func(i, j int) bool { return out[i].Members > out[j].Members })
	s.writeJSON(w, out)
}

func (s *Server) handleCommunity(w http.ResponseWriter, r *http.Request) {
	c, err := strconv.Atoi(r.URL.Query().Get("id"))
	if err != nil {
		http.Error(w, "bad or missing community id", http.StatusBadRequest)
		return
	}
	detail, err := s.engine.Community(c)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.writeJSON(w, detail)
}

func (s *Server) handleRank(w http.ResponseWriter, r *http.Request) {
	q := strings.TrimSpace(r.URL.Query().Get("q"))
	if q == "" {
		http.Error(w, "missing q parameter", http.StatusBadRequest)
		return
	}
	k := 10
	if kq := r.URL.Query().Get("k"); kq != "" {
		if v, err := strconv.Atoi(kq); err == nil && v > 0 {
			k = v
		}
	}
	res, err := s.engine.RankText(q, k)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, serve.ErrNoVocabulary) {
			status = http.StatusNotImplemented
		}
		http.Error(w, err.Error(), status)
		return
	}
	s.writeJSON(w, res.Entries)
}

func (s *Server) handleGraph(w http.ResponseWriter, r *http.Request) {
	// One coherent snapshot for the whole request, pinned so a concurrent
	// hot-swap cannot unmap a mapped model while the graph is built.
	v, release, err := s.engine.Acquire()
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	defer release()
	topic := -1
	if tq := r.URL.Query().Get("topic"); tq != "" {
		t, err := strconv.Atoi(tq)
		if err != nil || t < -1 || t >= v.Model.Cfg.NumTopics {
			http.Error(w, "bad topic", http.StatusBadRequest)
			return
		}
		topic = t
	}
	dg := apps.BuildDiffusionGraph(v.Model, v.Vocab, topic)
	switch r.URL.Query().Get("format") {
	case "dot":
		w.Header().Set("Content-Type", "text/vnd.graphviz")
		if err := dg.WriteDOT(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	default:
		s.writeJSON(w, dg)
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, s.engine.Stats())
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, indexHTML)
}

// indexHTML is a minimal single-page browser over the API.
const indexHTML = `<!DOCTYPE html>
<html><head><title>SocialLens — community profiles</title>
<style>
body{font-family:sans-serif;margin:2em;max-width:60em}
table{border-collapse:collapse}td,th{border:1px solid #ccc;padding:4px 8px;text-align:left}
input{padding:4px;width:20em}pre{background:#f6f6f6;padding:1em;overflow:auto}
</style></head><body>
<h1>SocialLens</h1>
<p>Browse communities by content and interaction (CPD profiles).</p>
<p><input id="q" placeholder="query, e.g. a campaign keyword"> <button onclick="rank()">rank communities</button></p>
<div id="out"></div>
<script>
async function load(){
  const cs = await (await fetch('/api/communities')).json();
  render('<h2>Communities</h2>', cs);
}
async function rank(){
  const q = document.getElementById('q').value;
  const r = await fetch('/api/rank?q='+encodeURIComponent(q));
  if(!r.ok){document.getElementById('out').textContent = await r.text();return;}
  render('<h2>Top communities for "'+q+'"</h2>', await r.json());
}
function render(title, rows){
  if(!rows.length){document.getElementById('out').textContent='no data';return;}
  const cols = Object.keys(rows[0]);
  let h = title+'<table><tr>'+cols.map(c=>'<th>'+c+'</th>').join('')+'</tr>';
  for(const row of rows){h += '<tr>'+cols.map(c=>'<td>'+JSON.stringify(row[c])+'</td>').join('')+'</tr>';}
  document.getElementById('out').innerHTML = h+'</table>';
}
load();
</script></body></html>
`
