package baselines

import (
	"math"
	"sync"
	"testing"

	"repro/internal/eval"
	"repro/internal/lda"
	"repro/internal/socialgraph"
	"repro/internal/synth"
)

var (
	graphOnce sync.Once
	bGraph    *socialgraph.Graph
	bTruth    *synth.GroundTruth
)

func testGraph(t *testing.T) (*socialgraph.Graph, *synth.GroundTruth) {
	t.Helper()
	graphOnce.Do(func() {
		bGraph, bTruth = synth.Generate(synth.TwitterLike(200, 51))
	})
	return bGraph, bTruth
}

func diffusionAUC(t *testing.T, g *socialgraph.Graph, score func(g *socialgraph.Graph, i, j int) float64) float64 {
	t.Helper()
	var pos, neg []float64
	for k, e := range g.Diffs {
		if k%3 == 0 {
			pos = append(pos, score(g, int(e.I), int(e.J)))
		}
	}
	for _, p := range eval.SampleNegativeDocPairs(g, len(pos), 7) {
		neg = append(neg, score(g, p[0], p[1]))
	}
	return eval.AUC(pos, neg)
}

func checkMembership(t *testing.T, name string, membership func(u int) []float64, users, C int) {
	t.Helper()
	for u := 0; u < users; u += 13 {
		row := membership(u)
		if len(row) != C {
			t.Fatalf("%s: membership dim %d, want %d", name, len(row), C)
		}
		var s float64
		for _, v := range row {
			if v < 0 || math.IsNaN(v) {
				t.Fatalf("%s: bad membership value %v", name, v)
			}
			s += v
		}
		if math.Abs(s-1) > 1e-6 {
			t.Fatalf("%s: membership sums to %v", name, s)
		}
	}
}

func TestPMTLM(t *testing.T) {
	g, _ := testGraph(t)
	m := TrainPMTLM(g, PMTLMConfig{NumTopics: 10, LDAIters: 25, Seed: 1})
	checkMembership(t, "PMTLM", m.Membership, g.NumUsers, 10)
	for _, r := range m.etaZ {
		if r <= 0 || math.IsNaN(r) {
			t.Fatalf("bad eta rate %v", r)
		}
	}
	if auc := diffusionAUC(t, g, m.DiffusionScore); auc < 0.55 {
		t.Fatalf("PMTLM diffusion AUC = %v", auc)
	}
	if s := m.FriendshipScore(0, 1); s < 0 || math.IsNaN(s) {
		t.Fatalf("FriendshipScore = %v", s)
	}
}

func TestWTM(t *testing.T) {
	g, _ := testGraph(t)
	m := TrainWTM(g, WTMConfig{NumTopics: 10, LDAIters: 25, Seed: 2})
	if auc := diffusionAUC(t, g, m.DiffusionScore); auc < 0.6 {
		t.Fatalf("WTM diffusion AUC = %v (features should separate planted links)", auc)
	}
	for i, v := range m.w {
		if math.IsNaN(v) {
			t.Fatalf("weight %d is NaN", i)
		}
	}
}

func TestCRM(t *testing.T) {
	g, gt := testGraph(t)
	m := TrainCRM(g, CRMConfig{NumCommunities: 20, Iters: 30, Seed: 3})
	checkMembership(t, "CRM", m.Membership, g.NumUsers, 20)
	if m.pIn <= m.pOut {
		t.Fatalf("blockmodel rates inverted: in=%v out=%v", m.pIn, m.pOut)
	}
	// Detection should beat chance against the planted home communities:
	// measure argmax purity.
	counts := map[[2]int]int{}
	sizes := map[int]int{}
	for u := 0; u < g.NumUsers; u++ {
		row := m.Membership(u)
		best := 0
		for c := range row {
			if row[c] > row[best] {
				best = c
			}
		}
		counts[[2]int{best, int(gt.HomeCommunity[u])}]++
		sizes[best]++
	}
	pure := 0
	for c := range sizes {
		bestN := 0
		for k, v := range counts {
			if k[0] == c && v > bestN {
				bestN = v
			}
		}
		pure += bestN
	}
	if purity := float64(pure) / float64(g.NumUsers); purity < 0.3 {
		t.Fatalf("CRM purity = %v, want > 0.3 (chance ~0.15)", purity)
	}
	if auc := diffusionAUC(t, g, m.DiffusionScore); auc < 0.5 {
		t.Fatalf("CRM diffusion AUC = %v", auc)
	}
}

func TestCOLD(t *testing.T) {
	g, _ := testGraph(t)
	m, err := TrainCOLD(g, COLDConfig{NumCommunities: 10, NumTopics: 10, EMIters: 8, Workers: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	checkMembership(t, "COLD", m.Membership, g.NumUsers, 10)
	if !m.Model.Cfg.NoFriendship || !m.Model.Cfg.NoIndividual || !m.Model.Cfg.NoTopicPopularity {
		t.Fatal("COLD wrapper lost its restriction flags")
	}
	if auc := diffusionAUC(t, g, m.DiffusionScore); auc < 0.6 {
		t.Fatalf("COLD diffusion AUC = %v", auc)
	}
	if len(m.RankScores([]int32{0})) != 10 {
		t.Fatal("RankScores dim wrong")
	}
}

func TestAggregated(t *testing.T) {
	g, _ := testGraph(t)
	crm := TrainCRM(g, CRMConfig{NumCommunities: 10, Iters: 25, Seed: 5})
	docs := make([][]int32, len(g.Docs))
	for i := range g.Docs {
		docs[i] = g.Docs[i].Words
	}
	ldaM := lda.Train(docs, g.NumWords, lda.Config{NumTopics: 10, Iters: 25, Seed: 6})
	docTheta := make([][]float64, len(g.Docs))
	for i := range g.Docs {
		docTheta[i] = ldaM.DocTopics(i)
	}
	agg := Aggregate(g, crm.Pi, ldaM, docTheta)

	// Eq. 20 profiles are row-normalized distributions.
	for c := 0; c < agg.C; c++ {
		var s float64
		for z := 0; z < agg.Z; z++ {
			v := agg.ThetaStar.At(c, z)
			if v < 0 {
				t.Fatalf("negative theta* at (%d,%d)", c, z)
			}
			s += v
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("theta* row %d sums to %v", c, s)
		}
	}
	// Eq. 21 profiles are normalized per source community (or all-zero for
	// communities with no diffusion mass).
	for c := 0; c < agg.C; c++ {
		var s float64
		for c2 := 0; c2 < agg.C; c2++ {
			for z := 0; z < agg.Z; z++ {
				s += agg.EtaStar.At(c, c2, z)
			}
		}
		if s != 0 && math.Abs(s-1) > 1e-6 {
			t.Fatalf("eta* row %d sums to %v", c, s)
		}
	}
	// WordProb is a proper-ish probability.
	for w := 0; w < 5; w++ {
		p := agg.WordProb(0, int32(w))
		if p <= 0 || p > 1 {
			t.Fatalf("WordProb = %v", p)
		}
	}
	if auc := diffusionAUC(t, g, agg.DiffusionScore); auc < 0.5 {
		t.Fatalf("aggregated diffusion AUC = %v", auc)
	}
	if len(agg.RankScores([]int32{0})) != agg.C {
		t.Fatal("RankScores dim wrong")
	}
	if agg.MembershipMatrix() != crm.Pi {
		t.Fatal("MembershipMatrix is not the detector's Pi")
	}
}

func TestSampleNegDocPairsHelpers(t *testing.T) {
	g, _ := testGraph(t)
	pairs := sampleNegDocPairs(g, 50, 9)
	if len(pairs) != 50 {
		t.Fatalf("sampled %d pairs", len(pairs))
	}
	existing := map[[2]int]bool{}
	for _, e := range g.Diffs {
		existing[[2]int{int(e.I), int(e.J)}] = true
	}
	for _, p := range pairs {
		if existing[p] || g.Docs[p[0]].User == g.Docs[p[1]].User {
			t.Fatalf("bad negative pair %v", p)
		}
	}
}

func TestCommonNeighbors(t *testing.T) {
	g := &socialgraph.Graph{NumUsers: 4, NumWords: 1,
		Docs: []socialgraph.Doc{{User: 0, Words: []int32{0}}},
		Friends: []socialgraph.FriendLink{
			{U: 0, V: 2}, {U: 1, V: 2}, {U: 0, V: 3}, {U: 1, V: 3}, {U: 0, V: 1},
		}}
	if got := commonNeighbors(g, 0, 1); got != 2 {
		t.Fatalf("commonNeighbors = %d, want 2", got)
	}
	if friendIndicator(g, 0, 1) != 1 || friendIndicator(g, 2, 3) != 0 {
		t.Fatal("friendIndicator wrong")
	}
}

func TestCosine(t *testing.T) {
	if got := cosine([]float64{1, 0}, []float64{1, 0}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("cosine = %v", got)
	}
	if got := cosine([]float64{1, 0}, []float64{0, 1}); got != 0 {
		t.Fatalf("orthogonal cosine = %v", got)
	}
	if got := cosine([]float64{0, 0}, []float64{1, 1}); got != 0 {
		t.Fatalf("zero-vector cosine = %v", got)
	}
}
