// Package baselines implements the four published systems the paper
// compares against (Sect. 6.1, Table 4) plus the two "first detection,
// then aggregation" profiling baselines (Eqs. 20–21):
//
//   - PMTLM [43]: Poisson mixed-topic link model — document topics generate
//     document links; adapted for community detection by aggregating doc
//     topics per user.
//   - WTM [37]: feature-based diffusion prediction from content similarity
//     and friendship structure; no community model.
//   - CRM [15]: probabilistic community + role model over friendship and
//     diffusion links; no content.
//   - COLD [17]: community-level diffusion from content + diffusion links;
//     no friendship modeling, no individual/topic-popularity factors
//     (instantiated as the matching restriction of the CPD code, which is
//     the honest reading of "COLD is the closest work to ours").
//   - CRM+Agg / COLD+Agg: detect with CRM/COLD, then aggregate user
//     observations into profiles with Eqs. 20 and 21.
//
// Every baseline here is trained, not stubbed.
package baselines

import (
	"math"

	"repro/internal/lda"
	"repro/internal/mathx"
	"repro/internal/socialgraph"
)

// PMTLM is the adapted Poisson mixed-topic link model: documents carry LDA
// topic mixtures and each topic has a link rate; a document pair's link
// intensity is sum_z eta_z theta_iz theta_jz. User memberships aggregate
// their documents' mixtures (the adaptation described in Sect. 6.1).
type PMTLM struct {
	K        int
	docTheta [][]float64
	// userTheta[u] is the averaged topic mixture of u's documents —
	// doubling as the community membership under the topics-as-communities
	// adaptation.
	userTheta [][]float64
	// etaZ[z] is the per-topic link rate, estimated as observed link mass
	// on z relative to the background rate of topic z co-occurrence.
	etaZ []float64
}

// PMTLMConfig bundles training knobs.
type PMTLMConfig struct {
	NumTopics int
	LDAIters  int
	Seed      uint64
}

// TrainPMTLM fits the model on graph g.
func TrainPMTLM(g *socialgraph.Graph, cfg PMTLMConfig) *PMTLM {
	docs := make([][]int32, len(g.Docs))
	for i := range g.Docs {
		docs[i] = g.Docs[i].Words
	}
	ldaM := lda.Train(docs, g.NumWords, lda.Config{
		NumTopics: cfg.NumTopics, Iters: cfg.LDAIters, Seed: cfg.Seed,
	})
	m := &PMTLM{K: cfg.NumTopics}
	m.docTheta = make([][]float64, len(g.Docs))
	for d := range g.Docs {
		m.docTheta[d] = ldaM.DocTopics(d)
	}
	m.userTheta = make([][]float64, g.NumUsers)
	for u := 0; u < g.NumUsers; u++ {
		t := make([]float64, cfg.NumTopics)
		ds := g.UserDocs(u)
		for _, d := range ds {
			for z, v := range m.docTheta[d] {
				t[z] += v
			}
		}
		if len(ds) > 0 {
			for z := range t {
				t[z] /= float64(len(ds))
			}
		} else {
			for z := range t {
				t[z] = 1 / float64(cfg.NumTopics)
			}
		}
		m.userTheta[u] = t
	}
	// Per-topic link rates: responsibility-weighted link mass over the
	// topic's background co-occurrence mass (a 1-step EM estimate of the
	// Poisson rates).
	linkMass := make([]float64, cfg.NumTopics)
	for _, e := range g.Diffs {
		ti, tj := m.docTheta[e.I], m.docTheta[e.J]
		var tot float64
		for z := 0; z < cfg.NumTopics; z++ {
			tot += ti[z] * tj[z]
		}
		if tot <= 0 {
			continue
		}
		for z := 0; z < cfg.NumTopics; z++ {
			linkMass[z] += ti[z] * tj[z] / tot
		}
	}
	meanTheta := make([]float64, cfg.NumTopics)
	for _, t := range m.docTheta {
		for z, v := range t {
			meanTheta[z] += v
		}
	}
	nd := float64(len(m.docTheta))
	m.etaZ = make([]float64, cfg.NumTopics)
	for z := 0; z < cfg.NumTopics; z++ {
		bg := (meanTheta[z] / nd) * (meanTheta[z] / nd)
		if bg <= 0 {
			bg = 1e-12
		}
		m.etaZ[z] = (linkMass[z] + 1e-6) / (float64(len(g.Diffs))*bg + 1e-6)
	}
	return m
}

// Membership returns user u's community (= topic) membership.
func (m *PMTLM) Membership(u int) []float64 { return m.userTheta[u] }

// FriendshipScore scores a potential friendship link by rate-weighted
// topic overlap.
func (m *PMTLM) FriendshipScore(u, v int) float64 {
	var s float64
	for z := 0; z < m.K; z++ {
		s += m.userTheta[u][z] * m.userTheta[v][z]
	}
	return s
}

// DiffusionScore scores document i diffusing document j by the Poisson
// intensity sum_z eta_z theta_iz theta_jz.
func (m *PMTLM) DiffusionScore(g *socialgraph.Graph, i, j int) float64 {
	ti, tj := m.docTheta[i], m.docTheta[j]
	var s float64
	for z := 0; z < m.K; z++ {
		s += m.etaZ[z] * ti[z] * tj[z]
	}
	return s
}

// WTM is the "Whom To Mention" diffusion model: a logistic regression over
// content-similarity, structural and individual features. It has no notion
// of community.
type WTM struct {
	w        []float64
	lda      *lda.Model
	docTheta [][]float64
}

// WTMConfig bundles training knobs.
type WTMConfig struct {
	NumTopics int
	LDAIters  int
	NegPerPos int
	Iters     int
	Seed      uint64
}

const wtmFeatDim = 8

// TrainWTM fits the model: positives are the observed diffusion links,
// negatives are sampled document pairs.
func TrainWTM(g *socialgraph.Graph, cfg WTMConfig) *WTM {
	if cfg.NegPerPos == 0 {
		cfg.NegPerPos = 1
	}
	if cfg.Iters == 0 {
		cfg.Iters = 120
	}
	docs := make([][]int32, len(g.Docs))
	for i := range g.Docs {
		docs[i] = g.Docs[i].Words
	}
	m := &WTM{}
	m.lda = lda.Train(docs, g.NumWords, lda.Config{
		NumTopics: cfg.NumTopics, Iters: cfg.LDAIters, Seed: cfg.Seed,
	})
	m.docTheta = make([][]float64, len(g.Docs))
	for d := range g.Docs {
		m.docTheta[d] = m.lda.DocTopics(d)
	}
	pos := make([][2]int, 0, len(g.Diffs))
	for _, e := range g.Diffs {
		pos = append(pos, [2]int{int(e.I), int(e.J)})
	}
	neg := sampleNegDocPairs(g, len(pos)*cfg.NegPerPos, cfg.Seed^0xA17)
	x := make([][]float64, 0, len(pos)+len(neg))
	y := make([]int, 0, len(pos)+len(neg))
	for _, p := range pos {
		x = append(x, m.features(g, p[0], p[1]))
		y = append(y, 1)
	}
	for _, p := range neg {
		x = append(x, m.features(g, p[0], p[1]))
		y = append(y, 0)
	}
	m.w = trainLogistic(x, y, cfg.Iters)
	return m
}

// features builds the WTM pairwise feature vector for doc pair (i, j):
// content cosine, friendship indicator, common-neighbour count, the four
// individual features and a bias.
func (m *WTM) features(g *socialgraph.Graph, i, j int) []float64 {
	u := int(g.Docs[i].User)
	v := int(g.Docs[j].User)
	f := make([]float64, wtmFeatDim)
	f[0] = cosine(m.docTheta[i], m.docTheta[j])
	f[1] = friendIndicator(g, u, v)
	f[2] = math.Log1p(float64(commonNeighbors(g, u, v)))
	f[3] = g.Popularity(u)
	f[4] = g.Activeness(u)
	f[5] = g.Popularity(v)
	f[6] = g.Activeness(v)
	f[7] = 1
	return f
}

// DiffusionScore scores document i diffusing document j.
func (m *WTM) DiffusionScore(g *socialgraph.Graph, i, j int) float64 {
	return mathx.Sigmoid(mathx.Dot(m.w, m.features(g, i, j)))
}

func cosine(a, b []float64) float64 {
	var dot, na, nb float64
	for k := range a {
		dot += a[k] * b[k]
		na += a[k] * a[k]
		nb += b[k] * b[k]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

func friendIndicator(g *socialgraph.Graph, u, v int) float64 {
	for _, n := range g.FriendNeighbors(u) {
		if int(n) == v {
			return 1
		}
	}
	return 0
}

func commonNeighbors(g *socialgraph.Graph, u, v int) int {
	a, b := g.FriendNeighbors(u), g.FriendNeighbors(v)
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}
