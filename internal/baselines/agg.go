package baselines

import (
	"math"

	"repro/internal/lda"
	"repro/internal/mathx"
	"repro/internal/socialgraph"
	"repro/internal/sparse"
)

// aggTopK truncates memberships to each user's strongest communities when
// aggregating Eq. 21 (consistent with the paper's top-five-communities
// convention and necessary for tractability at |C| = 150).
const aggTopK = 5

// Aggregated implements the straightforward "first detection, then
// aggregation" community profiling the paper builds its CRM+Agg and
// COLD+Agg baselines from: given the memberships π* of any detector and an
// LDA run over all documents, Eq. 20 aggregates content profiles θ* and
// Eq. 21 aggregates diffusion profiles η*.
type Aggregated struct {
	C, Z int
	// Pi is the detector's soft membership (|U| x |C|).
	Pi *sparse.Dense
	// ThetaStar is Eq. 20's aggregated content profile (row-normalized).
	ThetaStar *sparse.Dense
	// EtaStar is Eq. 21's aggregated diffusion profile (normalized per
	// source community).
	EtaStar *sparse.Tensor3

	lda       *lda.Model
	docTheta  [][]float64
	userMix   [][]float64 // per-user topic mixture Σ_c π*_u,c θ*_c,·
	rankTable *sparse.Dense
	topIdx    [][]int
	topVal    [][]float64
}

// Aggregate builds the profiles from detector memberships pi over graph g,
// with the shared LDA model and its per-document topic distributions.
func Aggregate(g *socialgraph.Graph, pi *sparse.Dense, ldaM *lda.Model, docTheta [][]float64) *Aggregated {
	C := pi.Cols
	Z := ldaM.NumTopics
	a := &Aggregated{
		C: C, Z: Z, Pi: pi,
		ThetaStar: sparse.NewDense(C, Z),
		EtaStar:   sparse.NewTensor3(C, C, Z),
		lda:       ldaM,
		docTheta:  docTheta,
	}
	// Top-K membership truncation per user.
	a.topIdx = make([][]int, g.NumUsers)
	a.topVal = make([][]float64, g.NumUsers)
	for u := 0; u < g.NumUsers; u++ {
		idx := mathx.TopKIndices(pi.Row(u), aggTopK)
		vals := make([]float64, len(idx))
		for k, c := range idx {
			vals[k] = pi.At(u, c)
		}
		a.topIdx[u] = idx
		a.topVal[u] = vals
	}

	// Eq. 20: theta*_c = Σ_u π*_u,c Σ_i θ*_dui / |D_u|.
	userAvg := make([][]float64, g.NumUsers)
	for u := 0; u < g.NumUsers; u++ {
		avg := make([]float64, Z)
		ds := g.UserDocs(u)
		for _, d := range ds {
			for z, v := range docTheta[d] {
				avg[z] += v
			}
		}
		if len(ds) > 0 {
			for z := range avg {
				avg[z] /= float64(len(ds))
			}
		}
		userAvg[u] = avg
	}
	for u := 0; u < g.NumUsers; u++ {
		row := pi.Row(u)
		for c := 0; c < C; c++ {
			w := row[c]
			if w < 1e-6 {
				continue
			}
			dst := a.ThetaStar.Row(c)
			for z, v := range userAvg[u] {
				dst[z] += w * v
			}
		}
	}
	a.ThetaStar.NormalizeRows()

	// Eq. 21: eta*_{c,c',z} ∝ Σ_{(i,j)∈E} π*_u,c π*_v,c' θ*_i,z θ*_j,z.
	for _, e := range g.Diffs {
		u := int(g.Docs[e.I].User)
		v := int(g.Docs[e.J].User)
		ti, tj := docTheta[e.I], docTheta[e.J]
		for ku, c := range a.topIdx[u] {
			wu := a.topVal[u][ku]
			for kv, c2 := range a.topIdx[v] {
				w := wu * a.topVal[v][kv]
				if w < 1e-8 {
					continue
				}
				for z := 0; z < Z; z++ {
					a.EtaStar.Add(c, c2, z, w*ti[z]*tj[z])
				}
			}
		}
	}
	// Normalize per source community (Definition 5 shape).
	for c := 0; c < C; c++ {
		var tot float64
		for c2 := 0; c2 < C; c2++ {
			for z := 0; z < Z; z++ {
				tot += a.EtaStar.At(c, c2, z)
			}
		}
		if tot <= 0 {
			continue
		}
		for c2 := 0; c2 < C; c2++ {
			for z := 0; z < Z; z++ {
				a.EtaStar.Set(c, c2, z, a.EtaStar.At(c, c2, z)/tot)
			}
		}
	}

	// Prediction caches.
	a.userMix = make([][]float64, g.NumUsers)
	for u := 0; u < g.NumUsers; u++ {
		mix := make([]float64, Z)
		row := pi.Row(u)
		for c := 0; c < C; c++ {
			w := row[c]
			if w < 1e-6 {
				continue
			}
			th := a.ThetaStar.Row(c)
			for z := 0; z < Z; z++ {
				mix[z] += w * th[z]
			}
		}
		a.userMix[u] = mix
	}
	a.rankTable = sparse.NewDense(C, Z)
	for c := 0; c < C; c++ {
		for z := 0; z < Z; z++ {
			var s float64
			for c2 := 0; c2 < C; c2++ {
				s += a.EtaStar.At(c, c2, z) * a.ThetaStar.At(c2, z)
			}
			a.rankTable.Set(c, z, s)
		}
	}
	return a
}

// DiffusionScore scores doc i diffusing doc j with the aggregated
// profiles: Σ_{c,c',z} η*_{c,c',z} π*_u,c π*_v,c' θ*_i,z θ*_j,z.
func (a *Aggregated) DiffusionScore(g *socialgraph.Graph, i, j int) float64 {
	u := int(g.Docs[i].User)
	v := int(g.Docs[j].User)
	ti, tj := a.docTheta[i], a.docTheta[j]
	var s float64
	for ku, c := range a.topIdx[u] {
		wu := a.topVal[u][ku]
		for kv, c2 := range a.topIdx[v] {
			w := wu * a.topVal[v][kv]
			if w < 1e-8 {
				continue
			}
			var t float64
			for z := 0; z < a.Z; z++ {
				t += a.EtaStar.At(c, c2, z) * ti[z] * tj[z]
			}
			s += w * t
		}
	}
	return s
}

// RankScores scores communities for a query (Eq. 19 with the aggregated
// profiles and the LDA topic-word distributions).
func (a *Aggregated) RankScores(query []int32) []float64 {
	logq := make([]float64, a.Z)
	for z := 0; z < a.Z; z++ {
		var lw float64
		for _, w := range query {
			lw += math.Log(a.lda.PhiAt(z, int(w)) + 1e-300)
		}
		logq[z] = lw
	}
	mathx.Softmax(logq, logq)
	scores := make([]float64, a.C)
	for c := 0; c < a.C; c++ {
		var s float64
		for z := 0; z < a.Z; z++ {
			s += a.rankTable.At(c, z) * logq[z]
		}
		scores[c] = s
	}
	return scores
}

// WordProb returns p(w|u) = Σ_c π*_u,c Σ_z θ*_c,z φ^LDA_z,w for the
// perplexity comparison of Fig. 8.
func (a *Aggregated) WordProb(u int, w int32) float64 {
	mix := a.userMix[u]
	var p float64
	for z := 0; z < a.Z; z++ {
		p += mix[z] * a.lda.PhiAt(z, int(w))
	}
	return p
}

// ProfileWordProbs returns the |C| x |W| matrix of each aggregated content
// profile's word distribution P[c][w] = Σ_z θ*_c,z φ^LDA_z,w (Fig. 8's
// profile-level perplexity evaluates these directly).
func (a *Aggregated) ProfileWordProbs(numWords int) *sparse.Dense {
	out := sparse.NewDense(a.C, numWords)
	for c := 0; c < a.C; c++ {
		theta := a.ThetaStar.Row(c)
		dst := out.Row(c)
		for z := 0; z < a.Z; z++ {
			tz := theta[z]
			if tz == 0 {
				continue
			}
			for w := 0; w < numWords; w++ {
				dst[w] += tz * a.lda.PhiAt(z, w)
			}
		}
	}
	return out
}

// TopCommunity returns the argmax detector membership of user u.
func (a *Aggregated) TopCommunity(u int) int {
	return mathx.MaxIndex(a.Pi.Row(u))
}

// MembershipMatrix exposes the detector memberships (for conductance and
// ranking member sets).
func (a *Aggregated) MembershipMatrix() *sparse.Dense { return a.Pi }
