package baselines

import (
	"repro/internal/core"
	"repro/internal/socialgraph"
)

// COLD is the COmmunity Level Diffusion model [17]: communities and topics
// are learned jointly from content and diffusion links, but — per Table 4
// — friendship links play no part in detection and the diffusion model has
// neither the individual-preference factor nor the topic-popularity
// factor. It is instantiated as exactly that restriction of the CPD code
// (the paper itself describes COLD as its closest baseline; the remaining
// differences are the features COLD lacks).
type COLD struct {
	Model *core.Model
}

// COLDConfig bundles training knobs.
type COLDConfig struct {
	NumCommunities int
	NumTopics      int
	EMIters        int
	Workers        int
	// Rho is the membership prior; 0 selects 1/|C| (see the experiment
	// harness's scale note in README.md (design notes) — the paper-default 50/|C|
	// over-smooths at reproduction scale, for COLD exactly as for CPD).
	Rho  float64
	Seed uint64
}

// TrainCOLD fits the model on graph g.
func TrainCOLD(g *socialgraph.Graph, cfg COLDConfig) (*COLD, error) {
	rho := cfg.Rho
	if rho == 0 {
		rho = 1 / float64(cfg.NumCommunities)
	}
	m, _, err := core.Train(g, core.Config{
		NumCommunities:    cfg.NumCommunities,
		NumTopics:         cfg.NumTopics,
		EMIters:           cfg.EMIters,
		Workers:           maxInt(cfg.Workers, 1),
		Rho:               rho,
		Seed:              cfg.Seed,
		NoFriendship:      true,
		NoIndividual:      true,
		NoTopicPopularity: true,
	})
	if err != nil {
		return nil, err
	}
	return &COLD{Model: m}, nil
}

// Membership returns user u's community membership.
func (m *COLD) Membership(u int) []float64 { return m.Model.Pi.Row(u) }

// FriendshipScore scores a potential friendship link by membership
// similarity (COLD does not model friendship; this is the standard
// membership-based adaptation used when evaluating it on link prediction).
func (m *COLD) FriendshipScore(u, v int) float64 {
	return m.Model.FriendshipProb(u, v)
}

// DiffusionScore scores doc i diffusing doc j; the wrapped model's config
// already disables the individual and popularity factors.
func (m *COLD) DiffusionScore(g *socialgraph.Graph, i, j int) float64 {
	return m.Model.DiffusionProb(g, int(g.Docs[i].User), j, -1)
}

// RankScores scores communities for a query with the COLD community
// diffusion strengths (Fig. 6 compares COLD on ranking).
func (m *COLD) RankScores(query []int32) []float64 {
	return m.Model.RankCommunities(query)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
