package baselines

import (
	"runtime"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/socialgraph"
	"repro/internal/sparse"
)

// PLPOptions tunes the parallel label-propagation baseline.
type PLPOptions struct {
	// Seed drives the tie-break hash. Two runs with the same seed, graph
	// and MaxSweeps produce bit-identical labels for ANY shard count.
	Seed uint64
	// Shards is the number of contiguous node ranges swept in parallel
	// (0 = GOMAXPROCS). Purely a throughput knob: the sweep is
	// synchronous (Jacobi-style), so shard boundaries never change the
	// result.
	Shards int
	// MaxSweeps caps the propagation (0 = 64). Synchronous updates can
	// oscillate on bipartite-ish structure; the keep-current damping
	// handles most of it, the cap handles the rest.
	MaxSweeps int
}

// PLPResult is the propagation outcome: one dense community label per
// node, labels numbered by first appearance in node order.
type PLPResult struct {
	Labels      []int32 `json:"labels"`
	Communities int     `json:"communities"`
	Sweeps      int     `json:"sweeps"`
	Converged   bool    `json:"converged"`
}

// PLP is the parallel label-propagation community detector — the cheap
// structural baseline the quality layer scores against the trained model,
// and an optional warm start for fresh training runs. Every node starts
// in its own community; each sweep reassigns every node to the label the
// plurality of its neighbors held at the START of the sweep (synchronous
// update), keeping the current label when it ties for the plurality and
// breaking remaining ties by a seeded hash. Convergence is zero moves.
//
// The synchronous update is what makes the decomposition deterministic:
// a node's new label depends only on the previous sweep's labels, never
// on whether a shard-mate was updated first, so any Shards value — and
// any goroutine schedule — yields bit-identical labels per seed.
func PLP(numUsers int, friends []socialgraph.FriendLink, opts PLPOptions) *PLPResult {
	shards := opts.Shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	if shards > numUsers {
		shards = numUsers
	}
	maxSweeps := opts.MaxSweeps
	if maxSweeps <= 0 {
		maxSweeps = 64
	}
	res := &PLPResult{Labels: make([]int32, numUsers)}
	if numUsers == 0 {
		return res
	}

	// CSR adjacency over the undirected view; self-loops dropped,
	// duplicate links kept (they just weight the edge, deterministically).
	deg := make([]int32, numUsers+1)
	for _, f := range friends {
		if f.U == f.V || f.U < 0 || f.V < 0 || int(f.U) >= numUsers || int(f.V) >= numUsers {
			continue
		}
		deg[f.U+1]++
		deg[f.V+1]++
	}
	for i := 1; i <= numUsers; i++ {
		deg[i] += deg[i-1]
	}
	adj := make([]int32, deg[numUsers])
	fill := make([]int32, numUsers)
	for _, f := range friends {
		if f.U == f.V || f.U < 0 || f.V < 0 || int(f.U) >= numUsers || int(f.V) >= numUsers {
			continue
		}
		adj[deg[f.U]+fill[f.U]] = f.V
		fill[f.U]++
		adj[deg[f.V]+fill[f.V]] = f.U
		fill[f.V]++
	}

	cur := make([]int32, numUsers)
	next := make([]int32, numUsers)
	for i := range cur {
		cur[i] = int32(i)
	}
	// Per-shard scratch: label counts keyed by label id with a stamp
	// array, so clearing between nodes is O(neighbors), not O(n).
	type scratch struct {
		count []int32
		stamp []uint32
		clock uint32
	}
	pool := make([]scratch, shards)
	for s := range pool {
		pool[s] = scratch{count: make([]int32, numUsers), stamp: make([]uint32, numUsers)}
	}

	moves := make([]uint64, shards)
	per := (numUsers + shards - 1) / shards
	for sweep := 0; sweep < maxSweeps; sweep++ {
		var wg sync.WaitGroup
		for s := 0; s < shards; s++ {
			lo, hi := s*per, (s+1)*per
			if hi > numUsers {
				hi = numUsers
			}
			if lo >= hi {
				moves[s] = 0
				continue
			}
			wg.Add(1)
			go func(s, lo, hi, sweep int) {
				defer wg.Done()
				sc := &pool[s]
				var m uint64
				for u := lo; u < hi; u++ {
					sc.clock++
					bestLabel := cur[u]
					bestCount := int32(0)
					bestHash := plpHash(opts.Seed, uint64(sweep), uint64(u), uint64(uint32(bestLabel)))
					curCount := int32(0)
					for _, v := range adj[deg[u]:deg[u+1]] {
						l := cur[v]
						if sc.stamp[l] != sc.clock {
							sc.stamp[l] = sc.clock
							sc.count[l] = 0
						}
						sc.count[l]++
						c := sc.count[l]
						if l == cur[u] {
							curCount = c
						}
						h := plpHash(opts.Seed, uint64(sweep), uint64(u), uint64(uint32(l)))
						if c > bestCount || (c == bestCount && h < bestHash) {
							bestLabel, bestCount, bestHash = l, c, h
						}
					}
					// Keep-current damping: staying put when the current
					// label ties the plurality kills 2-cycles.
					if curCount == bestCount && bestLabel != cur[u] {
						bestLabel = cur[u]
					}
					next[u] = bestLabel
					if bestLabel != cur[u] {
						m++
					}
				}
				moves[s] = m
			}(s, lo, hi, sweep)
		}
		wg.Wait()
		cur, next = next, cur
		res.Sweeps = sweep + 1
		var total uint64
		for _, m := range moves {
			total += m
		}
		if total == 0 {
			res.Converged = true
			break
		}
	}

	// Compress labels to dense community ids by first appearance in node
	// order — stable, and independent of how propagation numbered them.
	remap := make(map[int32]int32, 64)
	for i, l := range cur {
		id, ok := remap[l]
		if !ok {
			id = int32(len(remap))
			remap[l] = id
		}
		res.Labels[i] = id
	}
	res.Communities = len(remap)
	return res
}

// PLPGraph runs PLP over a social graph's friendship edges.
func PLPGraph(g *socialgraph.Graph, opts PLPOptions) *PLPResult {
	return PLP(g.NumUsers, g.Friends, opts)
}

// plpHash is a murmur3-finalizer mix over (seed, sweep, node, label) —
// the deterministic tie-break source.
func plpHash(seed, sweep, node, label uint64) uint64 {
	x := seed ^ sweep*0x9E3779B97F4A7C15 ^ node*0xC2B2AE3D27D4EB4F ^ label*0x165667B19E3779F9
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	x *= 0xC4CEB9FE1A85EC53
	x ^= x >> 33
	return x
}

// WarmStartModel assembles the minimal model core.NewEngineFromModel
// needs to resume training from a PLP decomposition — the
// `cpd-train -init plp` path. PLP communities are ranked by size
// (descending, ties by label) and mapped onto the model's |C| community
// slots; labels beyond |C| fold back round-robin. Document topics start
// at seeded random exactly as in a fresh run, η uniform, ν zero: the
// structural prior is the only thing warm about it.
func WarmStartModel(g *socialgraph.Graph, cfg core.Config, labels []int32) *core.Model {
	cfg = cfg.WithDefaults()
	C, Z := cfg.NumCommunities, cfg.NumTopics

	// Rank PLP communities by size so the largest structures land on
	// distinct community ids before any folding starts.
	sizes := make(map[int32]int)
	for _, l := range labels {
		sizes[l]++
	}
	order := make([]int32, 0, len(sizes))
	for l := range sizes {
		order = append(order, l)
	}
	sort.Slice(order, func(i, j int) bool {
		if sizes[order[i]] != sizes[order[j]] {
			return sizes[order[i]] > sizes[order[j]]
		}
		return order[i] < order[j]
	})
	toComm := make(map[int32]int32, len(order))
	for rank, l := range order {
		toComm[l] = int32(rank % C)
	}
	userComm := func(u int32) int32 {
		if int(u) < len(labels) {
			return toComm[labels[u]]
		}
		return u % int32(C)
	}

	r := rng.New(cfg.Seed ^ 0x9E3779B9)
	m := &core.Model{
		Cfg:          cfg,
		NumUsers:     g.NumUsers,
		NumWords:     g.NumWords,
		DocCommunity: make([]int32, len(g.Docs)),
		DocTopic:     make([]int32, len(g.Docs)),
		Eta:          sparse.NewTensor3(C, C, Z),
		Nu:           make([]float64, socialgraph.FeatureDim),
	}
	for i, d := range g.Docs {
		m.DocCommunity[i] = userComm(d.User)
		m.DocTopic[i] = int32(r.Intn(Z))
	}
	uniform := 1 / float64(C*Z)
	for i := range m.Eta.Data {
		m.Eta.Data[i] = uniform
	}
	return m
}
