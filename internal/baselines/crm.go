package baselines

import (
	"math"
	"sort"

	"repro/internal/logreg"
	"repro/internal/rng"
	"repro/internal/socialgraph"
	"repro/internal/sparse"
)

// CRM is the Community Role Model [15]: every user carries a latent
// community and a role; friendship links follow a stochastic blockmodel
// (intra-community links denser than inter), diffusion links follow
// community-pair strengths modulated by the diffusing user's role
// (opinion leaders diffuse more). No content is modeled (Table 4). The
// sampler is collapsed Gibbs over per-user community assignments with the
// blockmodel rates and community-pair diffusion strengths re-estimated
// each sweep, and the soft membership is the occupancy over the final
// sweeps.
type CRM struct {
	C int
	// Pi is |U| x |C| soft membership from sample occupancy.
	Pi *sparse.Dense
	// D[c][c'] is the community-pair diffusion strength.
	D *sparse.Dense
	// role[u] is the multiplicative role factor (opinion leader > 1).
	role []float64
	pIn  float64
	pOut float64
}

// CRMConfig bundles training knobs.
type CRMConfig struct {
	NumCommunities int
	Iters          int // Gibbs sweeps (default 40)
	SoftSweeps     int // final sweeps accumulated into Pi (default 10)
	Seed           uint64
}

// TrainCRM fits the model on graph g.
func TrainCRM(g *socialgraph.Graph, cfg CRMConfig) *CRM {
	if cfg.Iters == 0 {
		cfg.Iters = 40
	}
	if cfg.SoftSweeps == 0 {
		cfg.SoftSweeps = 10
	}
	if cfg.SoftSweeps > cfg.Iters {
		cfg.SoftSweeps = cfg.Iters
	}
	C := cfg.NumCommunities
	r := rng.New(cfg.Seed)
	m := &CRM{C: C, Pi: sparse.NewDense(g.NumUsers, C), D: sparse.NewDense(C, C)}

	// Role assignment: users in the top activeness quintile are opinion
	// leaders with a fixed diffusion boost.
	m.role = make([]float64, g.NumUsers)
	acts := make([]float64, g.NumUsers)
	for u := range acts {
		acts[u] = g.Activeness(u)
		m.role[u] = 1
	}
	sorted := append([]float64(nil), acts...)
	sort.Float64s(sorted)
	cut := sorted[int(float64(len(sorted))*0.8)]
	for u := range acts {
		if acts[u] >= cut && cut > 0 {
			m.role[u] = 1.5
		}
	}

	// User-level diffusion multigraph: u diffuses v (by document links).
	type pair struct{ u, v int32 }
	var diffPairs []pair
	for _, e := range g.Diffs {
		diffPairs = append(diffPairs, pair{g.Docs[e.I].User, g.Docs[e.J].User})
	}
	diffOut := make([][]int32, g.NumUsers) // partner users u diffuses
	diffIn := make([][]int32, g.NumUsers)  // partner users diffusing u
	for _, p := range diffPairs {
		diffOut[p.u] = append(diffOut[p.u], p.v)
		diffIn[p.v] = append(diffIn[p.v], p.u)
	}

	assign := make([]int32, g.NumUsers)
	count := make([]float64, C)
	for u := range assign {
		c := int32(r.Intn(C))
		assign[u] = c
		count[c]++
	}

	logw := make([]float64, C)
	dCount := sparse.NewDense(C, C)
	for iter := 0; iter < cfg.Iters; iter++ {
		// Re-estimate blockmodel rates and diffusion strengths from the
		// current assignment.
		var intra, inter float64
		for _, f := range g.Friends {
			if assign[f.U] == assign[f.V] {
				intra++
			} else {
				inter++
			}
		}
		var intraPairs float64
		for c := 0; c < C; c++ {
			intraPairs += count[c] * (count[c] - 1)
		}
		totalPairs := float64(g.NumUsers) * float64(g.NumUsers-1)
		m.pIn = (intra + 1) / (intraPairs + 2)
		m.pOut = (inter + 1) / (totalPairs - intraPairs + 2)
		if m.pIn <= m.pOut {
			m.pIn = m.pOut * 1.0001 // keep the log-odds defined
		}
		logOdds := math.Log(m.pIn / m.pOut)
		// Bootstrap: from a random start the estimated rates are nearly
		// equal, so the likelihood has no gradient and the size prior
		// collapses everyone into one community. Assume assortativity and
		// ignore the (equally uninformed) diffusion strengths for the first
		// third of the sweeps.
		bootstrap := iter < cfg.Iters/3
		if bootstrap && logOdds < 2 {
			logOdds = 2
		}
		// Non-link term of the Bernoulli blockmodel: being in community c
		// also means NOT linking to its other members, contributing
		// log((1-pIn)/(1-pOut)) per non-neighbour member. This is what
		// keeps communities from snowballing.
		nonLink := math.Log((1 - m.pIn) / (1 - m.pOut))
		if bootstrap && nonLink > -0.05 {
			nonLink = -0.05
		}

		dCount.Fill(0)
		for _, p := range diffPairs {
			dCount.Add(int(assign[p.u]), int(assign[p.v]), 1)
		}
		const dSmooth = 0.1
		for c := 0; c < C; c++ {
			row := dCount.Row(c)
			var tot float64
			for _, v := range row {
				tot += v
			}
			den := tot + dSmooth*float64(C)
			dst := m.D.Row(c)
			for c2 := 0; c2 < C; c2++ {
				dst[c2] = (row[c2] + dSmooth) / den
			}
		}

		// Gibbs sweep over users. The community prior is uniform: a global
		// size prior (CRP-style) is an absorbing attractor at this scale —
		// one giant community swallows everything before the blockmodel
		// likelihood can form structure.
		for u := 0; u < g.NumUsers; u++ {
			cOld := assign[u]
			count[cOld]--
			for c := 0; c < C; c++ {
				logw[c] = count[c] * nonLink
			}
			for _, v := range g.FriendNeighbors(u) {
				cv := assign[v]
				logw[cv] += logOdds - nonLink // a linked member is not a non-link
			}
			if !bootstrap {
				for _, v := range diffOut[u] {
					cv := int(assign[v])
					for c := 0; c < C; c++ {
						logw[c] += math.Log(m.D.At(c, cv)*m.role[u] + 1e-9)
					}
				}
				for _, v := range diffIn[u] {
					cv := int(assign[v])
					for c := 0; c < C; c++ {
						logw[c] += math.Log(m.D.At(cv, c)*m.role[v] + 1e-9)
					}
				}
			}
			cNew := int32(r.CategoricalLog(logw))
			assign[u] = cNew
			count[cNew]++
			if iter >= cfg.Iters-cfg.SoftSweeps {
				m.Pi.Add(u, int(cNew), 1)
			}
		}
	}
	// Occupancy → smoothed soft membership.
	for u := 0; u < g.NumUsers; u++ {
		row := m.Pi.Row(u)
		for c := range row {
			row[c] += 0.1
		}
	}
	m.Pi.NormalizeRows()
	return m
}

// Membership returns user u's soft community membership.
func (m *CRM) Membership(u int) []float64 { return m.Pi.Row(u) }

// FriendshipScore scores a potential friendship link by the blockmodel
// rate expected under the soft memberships.
func (m *CRM) FriendshipScore(u, v int) float64 {
	var same float64
	pu, pv := m.Pi.Row(u), m.Pi.Row(v)
	for c := 0; c < m.C; c++ {
		same += pu[c] * pv[c]
	}
	return same*m.pIn + (1-same)*m.pOut
}

// DiffusionScore scores doc i diffusing doc j via the role-modulated
// community-pair strengths of the two documents' users.
func (m *CRM) DiffusionScore(g *socialgraph.Graph, i, j int) float64 {
	u := int(g.Docs[i].User)
	v := int(g.Docs[j].User)
	pu, pv := m.Pi.Row(u), m.Pi.Row(v)
	var s float64
	for c := 0; c < m.C; c++ {
		if pu[c] < 1e-4 {
			continue
		}
		row := m.D.Row(c)
		var t float64
		for c2 := 0; c2 < m.C; c2++ {
			t += row[c2] * pv[c2]
		}
		s += pu[c] * t
	}
	return s * m.role[u]
}

// sampleNegDocPairs draws document pairs that are not diffusion links
// (distinct users), shared by the WTM and ν-style trainers in this
// package.
func sampleNegDocPairs(g *socialgraph.Graph, n int, seed uint64) [][2]int {
	r := rng.New(seed)
	nd := len(g.Docs)
	existing := make(map[int64]bool, len(g.Diffs))
	for _, e := range g.Diffs {
		existing[int64(e.I)*int64(nd)+int64(e.J)] = true
	}
	out := make([][2]int, 0, n)
	for tries := 0; len(out) < n && tries < 50*n+100; tries++ {
		i := r.Intn(nd)
		j := r.Intn(nd)
		if i == j || g.Docs[i].User == g.Docs[j].User || existing[int64(i)*int64(nd)+int64(j)] {
			continue
		}
		out = append(out, [2]int{i, j})
	}
	return out
}

// trainLogistic is a thin wrapper over logreg for baselines that learn
// pairwise weights.
func trainLogistic(x [][]float64, y []int, iters int) []float64 {
	m, err := logreg.Train(x, nil, y, logreg.Config{Iters: iters})
	if err != nil || m == nil {
		return make([]float64, len(x[0]))
	}
	return m.W
}
