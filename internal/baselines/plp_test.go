package baselines

import (
	"testing"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/rng"
	"repro/internal/socialgraph"
)

// plantedGraph builds a blocks-of-equal-size planted partition: dense
// inside a block, sparse across blocks. Returns the edges and the true
// block per node.
func plantedGraph(nodes, blocks int, seed uint64) ([]socialgraph.FriendLink, []int32) {
	r := rng.New(seed)
	per := nodes / blocks
	truth := make([]int32, nodes)
	for i := range truth {
		b := i / per
		if b >= blocks {
			b = blocks - 1
		}
		truth[i] = int32(b)
	}
	var edges []socialgraph.FriendLink
	for u := 0; u < nodes; u++ {
		for v := u + 1; v < nodes; v++ {
			p := 0.02
			if truth[u] == truth[v] {
				p = 0.30
			}
			if r.Float64() < p {
				edges = append(edges, socialgraph.FriendLink{U: int32(u), V: int32(v)})
			}
		}
	}
	return edges, truth
}

func TestPLPTwoTriangles(t *testing.T) {
	edges := []socialgraph.FriendLink{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2},
		{U: 3, V: 4}, {U: 4, V: 5}, {U: 3, V: 5},
		{U: 2, V: 3},
	}
	res := PLP(6, edges, PLPOptions{Seed: 42})
	if !res.Converged {
		t.Fatalf("did not converge in %d sweeps", res.Sweeps)
	}
	if res.Labels[0] != res.Labels[1] || res.Labels[1] != res.Labels[2] {
		t.Fatalf("first triangle split: %v", res.Labels)
	}
	if res.Labels[3] != res.Labels[4] || res.Labels[4] != res.Labels[5] {
		t.Fatalf("second triangle split: %v", res.Labels)
	}
	if res.Communities < 2 || res.Labels[0] == res.Labels[3] {
		t.Fatalf("triangles merged: %v", res.Labels)
	}
}

func TestPLPDeterministicAcrossShards(t *testing.T) {
	edges, _ := plantedGraph(240, 6, 9)
	ref := PLP(240, edges, PLPOptions{Seed: 7, Shards: 1})
	for _, shards := range []int{2, 3, 5, 16, 64} {
		got := PLP(240, edges, PLPOptions{Seed: 7, Shards: shards})
		if len(got.Labels) != len(ref.Labels) {
			t.Fatalf("shards=%d: length mismatch", shards)
		}
		for i := range got.Labels {
			if got.Labels[i] != ref.Labels[i] {
				t.Fatalf("shards=%d: label[%d] = %d, want %d (not bit-identical)",
					shards, i, got.Labels[i], ref.Labels[i])
			}
		}
		if got.Sweeps != ref.Sweeps || got.Communities != ref.Communities {
			t.Fatalf("shards=%d: sweeps/communities diverged", shards)
		}
	}
	// Repeat runs with the same options are bit-identical too.
	again := PLP(240, edges, PLPOptions{Seed: 7, Shards: 1})
	for i := range again.Labels {
		if again.Labels[i] != ref.Labels[i] {
			t.Fatal("same-seed rerun differs")
		}
	}
}

func TestPLPRecoversPlantedPartition(t *testing.T) {
	edges, truth := plantedGraph(240, 4, 3)
	res := PLP(240, edges, PLPOptions{Seed: 11})
	if nmi := eval.NMI(res.Labels, truth); nmi < 0.7 {
		t.Fatalf("PLP NMI vs planted partition = %v, want >= 0.7 (found %d communities)",
			nmi, res.Communities)
	}
}

func TestPLPDegenerateInputs(t *testing.T) {
	if res := PLP(0, nil, PLPOptions{}); len(res.Labels) != 0 || res.Communities != 0 {
		t.Fatalf("empty graph: %+v", res)
	}
	// Isolated nodes stay singletons.
	res := PLP(3, nil, PLPOptions{Seed: 1})
	if res.Communities != 3 {
		t.Fatalf("isolated nodes merged: %+v", res)
	}
}

func TestWarmStartModelResumable(t *testing.T) {
	g, truth := testGraph(t)
	res := PLPGraph(g, PLPOptions{Seed: 5})
	cfg := core.Config{NumCommunities: 8, NumTopics: 6, EMIters: 2, Seed: 17}
	m0 := WarmStartModel(g, cfg, res.Labels)
	if len(m0.DocCommunity) != len(g.Docs) || len(m0.DocTopic) != len(g.Docs) {
		t.Fatal("warm-start assignments do not cover the corpus")
	}
	for i := range m0.DocCommunity {
		if c := m0.DocCommunity[i]; c < 0 || int(c) >= 8 {
			t.Fatalf("doc %d community %d out of range", i, c)
		}
		if z := m0.DocTopic[i]; z < 0 || int(z) >= 6 {
			t.Fatalf("doc %d topic %d out of range", i, z)
		}
	}
	// The whole point: core's resume machinery accepts it as-is.
	m, _, err := core.TrainResumed(g, m0, 2, core.ResumeOptions{Workers: 2})
	if err != nil {
		t.Fatalf("TrainResumed from warm start: %v", err)
	}
	if nmi := eval.NMI(hardAssign(m), truth.HomeCommunity); nmi < 0 {
		t.Fatalf("NMI = %v", nmi)
	}
}

func hardAssign(m *core.Model) []int32 {
	out := make([]int32, m.NumUsers)
	for u := range out {
		out[u] = int32(m.TopCommunity(u))
	}
	return out
}
