package exp

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"
)

// fastOptions keeps harness tests quick: tiny data, two folds, a short |C|
// sweep and few EM iterations. The point of these tests is that every
// runner produces well-formed, plausible tables — the full-scale runs live
// in cmd/cpd-experiments and the benchmarks.
func fastOptions() Options {
	return Options{
		Scale:          Tiny,
		Folds:          2,
		EMIters:        10,
		Workers:        1,
		CommunitySweep: []int{8, 12},
		Topics:         12,
		Seed:           77,
	}
}

func checkTable(t *testing.T, tab *Table, wantRows int) {
	t.Helper()
	if tab.Title == "" || len(tab.Header) == 0 {
		t.Fatalf("malformed table: %+v", tab)
	}
	if wantRows > 0 && len(tab.Rows) < wantRows {
		t.Fatalf("%s: %d rows, want >= %d", tab.Title, len(tab.Rows), wantRows)
	}
	var buf bytes.Buffer
	tab.Fprint(&buf)
	if !strings.Contains(buf.String(), tab.Title) {
		t.Fatalf("Fprint lost the title")
	}
}

func TestRunTable3(t *testing.T) {
	tab := RunTable3(fastOptions())
	checkTable(t, tab, 2)
	if !strings.Contains(tab.Rows[0][0], "Twitter") || !strings.Contains(tab.Rows[1][0], "DBLP") {
		t.Fatalf("unexpected dataset rows: %v", tab.Rows)
	}
}

func TestRunFigure3(t *testing.T) {
	if testing.Short() {
		t.Skip("harness grid in -short mode")
	}
	tables := RunFigure3(fastOptions())
	if len(tables) != 6 { // 3 metrics x 2 datasets
		t.Fatalf("got %d tables, want 6", len(tables))
	}
	for _, tab := range tables {
		checkTable(t, tab, 3)
	}
	// Heterogeneity must hurt diffusion AUC on both datasets (the paper's
	// central Fig. 3 claim).
	for _, tab := range tables {
		if !strings.Contains(tab.Title, "diffusion link prediction") {
			continue
		}
		ours := findRow(tab, MCPD)
		noHet := findRow(tab, MNoHet)
		for i := 1; i < len(ours); i++ {
			a, b := parseF(t, ours[i]), parseF(t, noHet[i])
			if !(a > b) {
				t.Errorf("%s |C|=%s: Ours %v <= NoHet %v", tab.Title, tab.Header[i], a, b)
			}
		}
	}
}

func TestRunFigure3Nonconformity(t *testing.T) {
	if testing.Short() {
		t.Skip("harness grid in -short mode")
	}
	tables := RunFigure3Nonconformity(fastOptions())
	if len(tables) != 2 {
		t.Fatalf("got %d tables", len(tables))
	}
	for _, tab := range tables {
		checkTable(t, tab, 3)
		// Full model at least matches the no-individual-and-topic ablation
		// on average over the sweep.
		ours := avgRow(t, findRow(tab, MCPD))
		ablated := avgRow(t, findRow(tab, MNoIndTop))
		if ours < ablated-0.03 {
			t.Errorf("%s: Ours %v clearly below NoIndTopic %v", tab.Title, ours, ablated)
		}
	}
}

func TestRunFigure4(t *testing.T) {
	if testing.Short() {
		t.Skip("harness grid in -short mode")
	}
	o := fastOptions()
	tables := RunFigure4(o)
	if len(tables) != 2 {
		t.Fatalf("got %d tables", len(tables))
	}
	for _, tab := range tables {
		checkTable(t, tab, 5)
		// PMTLM only on DBLP, as in the paper.
		hasPMTLM := findRowOK(tab, MPMTLM)
		if strings.Contains(tab.Title, "Twitter") && hasPMTLM {
			t.Error("PMTLM ran on Twitter")
		}
		if strings.Contains(tab.Title, "DBLP") && !hasPMTLM {
			t.Error("PMTLM missing on DBLP")
		}
		// CPD clearly beats the aggregation baselines (the joint-vs-
		// aggregate claim) and at least matches the strongest feature
		// baseline at this tiny scale.
		ours := avgRow(t, findRow(tab, MCPD))
		for _, name := range []string{MCRM, MCRMAgg, MCOLDAgg} {
			if base := avgRow(t, findRow(tab, name)); ours <= base {
				t.Errorf("%s: Ours %.3f <= %s %.3f", tab.Title, ours, name, base)
			}
		}
		if wtm := avgRow(t, findRow(tab, MWTM)); ours < wtm-0.01 {
			t.Errorf("%s: Ours %.3f clearly below WTM %.3f", tab.Title, ours, wtm)
		}
	}
}

func TestRunFigure8PerplexityGap(t *testing.T) {
	if testing.Short() {
		t.Skip("harness grid in -short mode")
	}
	tables := RunFigure8(fastOptions())
	for _, tab := range tables {
		checkTable(t, tab, 3)
		// The paper's Fig. 8 direction: CPD's content profiles explain user
		// content clearly better than the aggregated profiles (orders of
		// magnitude at the paper's scale; a solid margin at ours).
		ours := avgRow(t, findRow(tab, MCPD))
		for _, name := range []string{MCOLDAgg, MCRMAgg} {
			if base := avgRow(t, findRow(tab, name)); ours > base*0.95 {
				t.Errorf("%s: Ours %.1f not clearly below %s %.1f", tab.Title, ours, name, base)
			}
		}
	}
}

func TestRunFigure9(t *testing.T) {
	if testing.Short() {
		t.Skip("harness grid in -short mode")
	}
	tables := RunFigure9(fastOptions())
	if len(tables) != 4 {
		t.Fatalf("got %d tables", len(tables))
	}
	for _, tab := range tables {
		checkTable(t, tab, 4)
	}
}

func TestRunFigure6AndRanking(t *testing.T) {
	if testing.Short() {
		t.Skip("harness grid in -short mode")
	}
	o := fastOptions()
	tables := RunFigure6(o)
	if len(tables) == 0 {
		t.Fatal("no ranking tables")
	}
	for _, tab := range tables {
		checkTable(t, tab, 3)
		// MAF is a valid F1 value.
		for _, row := range tab.Rows {
			for _, cell := range row[1:] {
				v := parseF(t, cell)
				if v < 0 || v > 1 {
					t.Fatalf("%s: MAF out of range: %v", tab.Title, v)
				}
			}
		}
	}
}

func TestRunFigure5AndTables(t *testing.T) {
	if testing.Short() {
		t.Skip("harness grid in -short mode")
	}
	o := fastOptions()
	for _, tab := range RunFigure5(o) {
		checkTable(t, tab, 1)
	}
	checkTable(t, RunTable5(o), 3)
	checkTable(t, RunTable6(o), 1)
}

func TestRunFigure7(t *testing.T) {
	if testing.Short() {
		t.Skip("harness grid in -short mode")
	}
	tables := RunFigure7(fastOptions(), "", nil)
	if len(tables) != 4 { // 3 graphs + openness
		t.Fatalf("got %d tables", len(tables))
	}
	for _, tab := range tables {
		checkTable(t, tab, 1)
	}
}

func TestRunFigure10And11(t *testing.T) {
	if testing.Short() {
		t.Skip("scalability timing in -short mode")
	}
	o := fastOptions()
	tables := RunFigure10(o)
	if len(tables) != 4 {
		t.Fatalf("Figure 10: got %d tables", len(tables))
	}
	for _, tab := range tables {
		checkTable(t, tab, 2)
	}
	// Linearity: full-data sweep time should exceed quarter-data time on
	// the serial column.
	for _, tab := range tables {
		if !strings.Contains(tab.Title, "10(a)") {
			continue
		}
		first := parseF(t, tab.Rows[0][1])
		last := parseF(t, tab.Rows[len(tab.Rows)-1][1])
		if !(last > first) {
			t.Errorf("%s: time not increasing with data size (%v -> %v)", tab.Title, first, last)
		}
	}
	// Fig 10(b) must sweep the full {2,4,6,8} worker grid regardless of the
	// physical core count (workers are goroutines): 1 serial row + 4 sweep
	// rows, always.
	for _, tab := range tables {
		if !strings.Contains(tab.Title, "10(b)") {
			continue
		}
		if len(tab.Rows) != 5 {
			t.Errorf("%s: %d rows, want 5 (1 serial + workers {2,4,6,8})", tab.Title, len(tab.Rows))
		}
		for _, row := range tab.Rows {
			if sec := parseF(t, row[1]); !(sec > 0) {
				t.Errorf("%s: workers=%s measured %v seconds/sweep", tab.Title, row[0], sec)
			}
		}
	}
	t11, err := RunFigure11(o)
	if err != nil {
		t.Fatalf("Figure 11: %v", err)
	}
	if len(t11) != 2 { // one table per dataset — silent drops are bugs
		t.Fatalf("Figure 11: got %d tables, want 2", len(t11))
	}
	for _, tab := range t11 {
		checkTable(t, tab, 2)
		// Every worker row reports a positive actual load.
		for _, row := range tab.Rows {
			if act := parseF(t, row[2]); !(act >= 0) {
				t.Errorf("%s: worker %s actual load %v", tab.Title, row[0], act)
			}
		}
	}
}

func TestQuerySet(t *testing.T) {
	o := fastOptions()
	ds := TwitterDataset(o)
	qs := querySet(ds.Graph, 2, 5, 10)
	if len(qs) == 0 {
		t.Fatal("no queries selected")
	}
	if len(qs) > 10 {
		t.Fatalf("cap ignored: %d queries", len(qs))
	}
	for _, q := range qs {
		rel := relevantUsers(ds.Graph, q)
		if len(rel) == 0 {
			t.Fatalf("query %d has no relevant users", q)
		}
	}
}

func TestHoldout(t *testing.T) {
	o := fastOptions()
	ds := TwitterDataset(o)
	g := ds.Graph
	tr := holdout(g, []int{0, 2}, []int{1})
	if len(tr.Friends) != 2 || len(tr.Diffs) != 1 {
		t.Fatalf("holdout sizes: %d friends, %d diffs", len(tr.Friends), len(tr.Diffs))
	}
	if tr.Friends[0] != g.Friends[0] || tr.Friends[1] != g.Friends[2] {
		t.Fatal("holdout picked wrong links")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func findRow(tab *Table, name string) []string {
	for _, row := range tab.Rows {
		if row[0] == name {
			return row
		}
	}
	return nil
}

func findRowOK(tab *Table, name string) bool { return findRow(tab, name) != nil }

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	var v float64
	if _, err := sscan(s, &v); err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func avgRow(t *testing.T, row []string) float64 {
	t.Helper()
	if row == nil {
		t.Fatal("missing row")
	}
	var s float64
	n := 0
	for _, cell := range row[1:] {
		v := parseF(t, cell)
		if !math.IsNaN(v) {
			s += v
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return s / float64(n)
}

func sscan(s string, v *float64) (int, error) {
	return fmt.Sscan(s, v)
}
