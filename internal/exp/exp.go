// Package exp is the experiment harness: one runner per table/figure of
// the paper's evaluation section (Sect. 6), printing the same rows/series
// the paper reports. The workloads are the synthetic Twitter-like and
// DBLP-like datasets of internal/synth (README.md design notes document the
// substitution); the protocols — k-fold link cross-validation, AUC,
// conductance with top-5 memberships, MAF@K ranking, perplexity, paired
// one-tailed t-tests — follow Sect. 6.1.
package exp

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/socialgraph"
	"repro/internal/synth"
)

// Scale selects a dataset size preset.
type Scale int

// Dataset scales: Tiny is for -short tests, Small for benchmarks, Medium
// for the full cpd-experiments run.
const (
	Tiny Scale = iota
	Small
	Medium
)

func (s Scale) users() int {
	switch s {
	case Tiny:
		return 200
	case Small:
		return 500
	default:
		return 1200
	}
}

// Options control every experiment runner.
type Options struct {
	Scale Scale
	// Folds for link cross-validation (paper: 10; default here 3 to keep
	// the grid tractable at reproduction scale — set 10 for the full
	// protocol).
	Folds int
	// EMIters for CPD-family models (default 15).
	EMIters int
	// Workers for CPD-family training (default 1; scalability experiments
	// control their own worker counts).
	Workers int
	// CommunitySweep is the |C| grid (default {20, 50, 100, 150}, the
	// paper's x-axis).
	CommunitySweep []int
	// Topics |Z| (default 25, matching the synthetic ground truth scale).
	Topics int
	// Rho overrides the membership prior. The paper's ρ = 50/|C| assumes
	// hundreds of documents per user; at our docs-per-user scale it
	// over-smooths π, so experiments default to ρ = 10/|C| (README.md
	// design notes).
	Rho  float64
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.Folds == 0 {
		o.Folds = 3
	}
	if o.EMIters == 0 {
		o.EMIters = 15
	}
	if o.Workers == 0 {
		o.Workers = 1
	}
	if len(o.CommunitySweep) == 0 {
		o.CommunitySweep = []int{20, 50, 100, 150}
	}
	if o.Topics == 0 {
		o.Topics = 25
	}
	if o.Seed == 0 {
		o.Seed = 20170217 // the VLDB'17 publication date, why not
	}
	return o
}

// rhoFor returns the membership prior for a given |C|.
func (o Options) rhoFor(c int) float64 {
	if o.Rho != 0 {
		return o.Rho
	}
	return 10 / float64(c)
}

// Dataset bundles a generated graph with its ground truth and name.
type Dataset struct {
	Name  string
	Graph *socialgraph.Graph
	Truth *synth.GroundTruth
}

// TwitterDataset generates the Twitter-like preset at the given scale.
func TwitterDataset(o Options) *Dataset {
	g, gt := synth.Generate(synth.TwitterLike(o.Scale.users(), o.Seed))
	return &Dataset{Name: "Twitter", Graph: g, Truth: gt}
}

// DBLPDataset generates the DBLP-like preset at the given scale.
func DBLPDataset(o Options) *Dataset {
	g, gt := synth.Generate(synth.DBLPLike(o.Scale.users(), o.Seed+1))
	return &Dataset{Name: "DBLP", Graph: g, Truth: gt}
}

// Table is a printable experiment artifact.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", pad))
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	printRow(t.Header)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

// f3 formats a float with three decimals; f1 with one.
func f3(x float64) string { return fmt.Sprintf("%.3f", x) }
func f1(x float64) string { return fmt.Sprintf("%.1f", x) }

// holdout builds a training graph sharing users/docs with g but keeping
// only the friendship and diffusion links whose indexes appear in
// fTrain/eTrain.
func holdout(g *socialgraph.Graph, fTrain, eTrain []int) *socialgraph.Graph {
	tr := &socialgraph.Graph{
		NumUsers: g.NumUsers,
		NumWords: g.NumWords,
		Docs:     g.Docs,
		Friends:  make([]socialgraph.FriendLink, 0, len(fTrain)),
		Diffs:    make([]socialgraph.DiffLink, 0, len(eTrain)),
	}
	for _, i := range fTrain {
		tr.Friends = append(tr.Friends, g.Friends[i])
	}
	for _, i := range eTrain {
		tr.Diffs = append(tr.Diffs, g.Diffs[i])
	}
	return tr
}
