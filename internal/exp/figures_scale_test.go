package exp

import (
	"math"
	"runtime"
	"testing"
)

// TestCoreSweepIgnoresPhysicalCores is the regression test for the Fig.
// 10(b) single-core collapse: the worker sweep is a logical-goroutine grid
// and must never be truncated by runtime.NumCPU() or GOMAXPROCS.
func TestCoreSweepIgnoresPhysicalCores(t *testing.T) {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	got := coreSweep()
	want := []int{2, 4, 6, 8}
	if len(got) != len(want) {
		t.Fatalf("coreSweep() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("coreSweep() = %v, want %v", got, want)
		}
	}
}

// TestSweepSecondsMultiWorkerOnOneProc drives the engine-backed timing
// helper with more workers than GOMAXPROCS allows threads: it must return
// a real measurement, not NaN — this is the exact failure mode that left
// TestRunFigure10And11 with a single speedup row on 1-core machines.
func TestSweepSecondsMultiWorkerOnOneProc(t *testing.T) {
	if testing.Short() {
		t.Skip("scalability timing in -short mode")
	}
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	o := fastOptions()
	ds := TwitterDataset(o)
	for _, workers := range []int{1, 4} {
		sec := sweepSeconds(o, ds.Graph, workers)
		if math.IsNaN(sec) || sec <= 0 {
			t.Fatalf("sweepSeconds(workers=%d) = %v under GOMAXPROCS=1", workers, sec)
		}
	}
}
