package exp

import (
	"fmt"

	"repro/internal/eval"
)

// pairedT is the paired one-tailed t-test over fold scores.
func pairedT(a, b []float64) (float64, error) { return eval.PairedTTest(a, b) }

// RunTable3 regenerates Table 3 (dataset statistics) for the synthetic
// datasets, printing the paper's original numbers alongside for scale
// context.
func RunTable3(o Options) *Table {
	o = o.withDefaults()
	t := &Table{
		Title:  "Table 3: data set statistics (synthetic reproduction; paper's originals in parentheses)",
		Header: []string{"dataset", "#(user)", "#(friend. link)", "#(diff. link)", "#(doc.)", "#(word)"},
	}
	tw := TwitterDataset(o)
	db := DBLPDataset(o)
	st := tw.Graph.Stats()
	t.AddRow("Twitter-like", fmt.Sprintf("%d (137,325)", st.Users),
		fmt.Sprintf("%d (3,589,811)", st.FriendLinks),
		fmt.Sprintf("%d (992,522)", st.DiffLinks),
		fmt.Sprintf("%d (39,952,379)", st.Docs),
		fmt.Sprintf("%d (2,316,020)", st.Words))
	sd := db.Graph.Stats()
	t.AddRow("DBLP-like", fmt.Sprintf("%d (916,907)", sd.Users),
		fmt.Sprintf("%d (3,063,186)", sd.FriendLinks),
		fmt.Sprintf("%d (10,210,652)", sd.DiffLinks),
		fmt.Sprintf("%d (4,121,213)", sd.Docs),
		fmt.Sprintf("%d (330,334)", sd.Words))
	t.Notes = append(t.Notes,
		"shape preserved: Twitter has |E| < |F| and many docs/user; DBLP has |E| > |F| (citations denser than co-authorship)")
	return t
}

// metricSpec names one grid metric.
type metricSpec struct {
	what string
	pick func(metrics) float64
}

var (
	condSpec = metricSpec{"community detection (conductance, lower=better)", func(m metrics) float64 { return m.cond }}
	fAUCSpec = metricSpec{"friendship link prediction (AUC, higher=better)", func(m metrics) float64 { return m.fAUC }}
	dAUCSpec = metricSpec{"diffusion link prediction (AUC, higher=better)", func(m metrics) float64 { return m.dAUC }}
	perpSpec = metricSpec{"content profile perplexity (lower=better)", func(m metrics) float64 { return m.perp }}
)

// gridTable renders one metric for a model subset out of grid results.
func (o Options) gridTable(title string, res gridResult, models []string, spec metricSpec, oneDecimal bool) *Table {
	t := &Table{
		Title:  title,
		Header: append([]string{"model \\ |C|"}, intHeaders(o.CommunitySweep)...),
	}
	fmtF := f3
	if oneDecimal {
		fmtF = f1
	}
	for _, name := range models {
		present := false
		for _, c := range o.CommunitySweep {
			if len(res[c][name]) > 0 {
				present = true
			}
		}
		if !present {
			continue
		}
		row := []string{name}
		for _, c := range o.CommunitySweep {
			row = append(row, fmtF(avg(res[c][name], spec.pick)))
		}
		t.AddRow(row...)
	}
	return t
}

// fig3Models / fig3ncModels / fig4Models / fig8Models / fig9Models are the
// per-figure model subsets.
var (
	fig3Models   = []string{MNoHet, MNoJoint, MCPD}
	fig3ncModels = []string{MNoIndTop, MNoTopic, MCPD}
	fig8Models   = []string{MCOLDAgg, MCRMAgg, MCPD}
	fig9Models   = []string{MPMTLM, MCRM, MCOLD, MCPD}
)

func fig4Models(dataset string) []string {
	models := []string{MWTM, MCRM, MCOLD, MCRMAgg, MCOLDAgg, MCPD}
	if dataset == "DBLP" {
		// PMTLM runs only on the citation-flavoured data, as in the paper
		// (a retweet is near-identical text, which degenerates PMTLM's
		// document-similarity link model).
		models = append([]string{MPMTLM}, models...)
	}
	return models
}

// unionModels is every grid model (for the shared all-figures run).
func unionModels(dataset string) []string {
	return append([]string{MNoHet, MNoJoint, MNoIndTop, MNoTopic, MWTM, MCRM, MCOLD, MCRMAgg, MCOLDAgg}, fig9ExtraFor(dataset)...)
}

func fig9ExtraFor(dataset string) []string {
	// PMTLM participates in Fig. 9 on both datasets for detection but in
	// Fig. 4 only on DBLP; train it everywhere in the union run.
	return []string{MPMTLM, MCPD}
}

// gridTablesFor renders every grid-based figure for one dataset's results.
func (o Options) gridTablesFor(dataset string, res gridResult) []*Table {
	var tables []*Table
	tables = append(tables,
		o.gridTable(fmt.Sprintf("Fig 3 %s — %s", condSpec.what, dataset), res, fig3Models, condSpec, false),
		o.gridTable(fmt.Sprintf("Fig 3 %s — %s", fAUCSpec.what, dataset), res, fig3Models, fAUCSpec, false),
		o.gridTable(fmt.Sprintf("Fig 3 %s — %s", dAUCSpec.what, dataset), res, fig3Models, dAUCSpec, false),
		o.gridTable(fmt.Sprintf("Fig 3(g,h) diffusion AUC with nonconformity ablations — %s", dataset), res, fig3ncModels, dAUCSpec, false),
	)
	f4 := o.gridTable(fmt.Sprintf("Fig 4 community-aware diffusion (AUC) — %s", dataset), res, fig4Models(dataset), dAUCSpec, false)
	if p, ok := significance(res, o.CommunitySweep, MCPD, fig4Models(dataset), dAUCSpec.pick); ok {
		f4.Notes = append(f4.Notes, p)
	}
	tables = append(tables, f4,
		o.gridTable(fmt.Sprintf("Fig 8 %s — %s", perpSpec.what, dataset), res, fig8Models, perpSpec, true),
		o.gridTable(fmt.Sprintf("Fig 9 %s — %s", condSpec.what, dataset), res, fig9Models, condSpec, false),
		o.gridTable(fmt.Sprintf("Fig 9 %s — %s", fAUCSpec.what, dataset), res, fig9Models, fAUCSpec, false),
	)
	return tables
}

// RunGridFigures trains the union model grid ONCE per dataset and emits
// Figs. 3, 3(g,h), 4, 8 and 9 — the efficient path cmd/cpd-experiments
// uses for -exp all.
func RunGridFigures(o Options) []*Table {
	o = o.withDefaults()
	var tables []*Table
	for _, ds := range []*Dataset{TwitterDataset(o), DBLPDataset(o)} {
		res := o.runGrid(ds, unionModels(ds.Name))
		tables = append(tables, o.gridTablesFor(ds.Name, res)...)
	}
	return tables
}

// RunFigure3 regenerates the model-design study, Fig. 3(a)-(f): community
// detection conductance, friendship link prediction AUC and diffusion link
// prediction AUC versus |C| for full CPD against the "no joint modeling"
// and "no heterogeneity" ablations, on both datasets.
func RunFigure3(o Options) []*Table {
	o = o.withDefaults()
	var tables []*Table
	for _, ds := range []*Dataset{TwitterDataset(o), DBLPDataset(o)} {
		res := o.runGrid(ds, fig3Models)
		tables = append(tables,
			o.gridTable(fmt.Sprintf("Fig 3 %s — %s", condSpec.what, ds.Name), res, fig3Models, condSpec, false),
			o.gridTable(fmt.Sprintf("Fig 3 %s — %s", fAUCSpec.what, ds.Name), res, fig3Models, fAUCSpec, false),
			o.gridTable(fmt.Sprintf("Fig 3 %s — %s", dAUCSpec.what, ds.Name), res, fig3Models, dAUCSpec, false),
		)
	}
	return tables
}

// RunFigure3Nonconformity regenerates Fig. 3(g)-(h): diffusion AUC for the
// nonconformity ablations ("no individual & topic", "no topic") against
// full CPD.
func RunFigure3Nonconformity(o Options) []*Table {
	o = o.withDefaults()
	var tables []*Table
	for _, ds := range []*Dataset{TwitterDataset(o), DBLPDataset(o)} {
		res := o.runGrid(ds, fig3ncModels)
		tables = append(tables,
			o.gridTable(fmt.Sprintf("Fig 3(g,h) diffusion AUC with nonconformity ablations — %s", ds.Name), res, fig3ncModels, dAUCSpec, false))
	}
	return tables
}

// RunFigure4 regenerates the community-aware diffusion comparison, Fig. 4:
// diffusion AUC versus |C| for CPD against the published baselines and the
// two aggregation baselines.
func RunFigure4(o Options) []*Table {
	o = o.withDefaults()
	var tables []*Table
	for _, ds := range []*Dataset{TwitterDataset(o), DBLPDataset(o)} {
		models := fig4Models(ds.Name)
		res := o.runGrid(ds, models)
		t := o.gridTable(fmt.Sprintf("Fig 4 community-aware diffusion (AUC) — %s", ds.Name), res, models, dAUCSpec, false)
		if p, ok := significance(res, o.CommunitySweep, MCPD, models, dAUCSpec.pick); ok {
			t.Notes = append(t.Notes, p)
		}
		tables = append(tables, t)
	}
	return tables
}

// RunFigure8 regenerates the perplexity comparison (Fig. 8's table): CPD's
// content profiles versus the aggregated profiles of COLD+Agg and CRM+Agg,
// per |C|. Lower is better.
func RunFigure8(o Options) []*Table {
	o = o.withDefaults()
	var tables []*Table
	for _, ds := range []*Dataset{TwitterDataset(o), DBLPDataset(o)} {
		res := o.runGrid(ds, fig8Models)
		tables = append(tables,
			o.gridTable(fmt.Sprintf("Fig 8 %s — %s", perpSpec.what, ds.Name), res, fig8Models, perpSpec, true))
	}
	return tables
}

// RunFigure9 regenerates the community detection comparison, Fig. 9:
// conductance and friendship link prediction AUC versus |C| for CPD
// against PMTLM, CRM and COLD.
func RunFigure9(o Options) []*Table {
	o = o.withDefaults()
	var tables []*Table
	for _, ds := range []*Dataset{TwitterDataset(o), DBLPDataset(o)} {
		res := o.runGrid(ds, fig9Models)
		tables = append(tables,
			o.gridTable(fmt.Sprintf("Fig 9 %s — %s", condSpec.what, ds.Name), res, fig9Models, condSpec, false),
			o.gridTable(fmt.Sprintf("Fig 9 %s — %s", fAUCSpec.what, ds.Name), res, fig9Models, fAUCSpec, false),
		)
	}
	return tables
}

func intHeaders(xs []int) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = fmt.Sprintf("%d", x)
	}
	return out
}

// significance runs the paired one-tailed t-test of CPD against each
// baseline over folds at the largest |C| and reports the worst (largest)
// p-value.
func significance(res gridResult, sweep []int, ours string, models []string, pick func(metrics) float64) (string, bool) {
	if len(sweep) == 0 {
		return "", false
	}
	c := sweep[len(sweep)-1]
	cell := res[c]
	oursVals := foldVals(cell[ours], pick)
	worst := -1.0
	for _, name := range models {
		if name == ours {
			continue
		}
		vals := foldVals(cell[name], pick)
		if len(vals) != len(oursVals) || len(vals) < 2 {
			continue
		}
		p, err := pairedT(oursVals, vals)
		if err == nil && p > worst {
			worst = p
		}
	}
	if worst < 0 {
		return "", false
	}
	return fmt.Sprintf("paired one-tailed t-test of Ours vs each baseline at |C|=%d: worst p = %.4f", c, worst), true
}

func foldVals(ms []metrics, pick func(metrics) float64) []float64 {
	var out []float64
	for _, m := range ms {
		v := pick(m)
		if v == v {
			out = append(out, v)
		}
	}
	return out
}
