package exp

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"repro/internal/apps"
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/lda"
	"repro/internal/socialgraph"
	"repro/internal/synth"
)

// querySet selects ranking queries per Sect. 6.3.2's guidelines, adapted
// to scale: single words that occur in at least minFreq diffusing
// documents, excluding the most frequent words (noise), capped at maxQ.
func querySet(g *socialgraph.Graph, minFreq, topExcluded, maxQ int) []int32 {
	isDiffusing := make([]bool, len(g.Docs))
	for _, e := range g.Diffs {
		isDiffusing[e.I] = true
	}
	freq := make(map[int32]int)
	totalFreq := make(map[int32]int)
	for i, d := range g.Docs {
		seen := make(map[int32]bool, len(d.Words))
		for _, w := range d.Words {
			if !seen[w] {
				seen[w] = true
				totalFreq[w]++
				if isDiffusing[i] {
					freq[w]++
				}
			}
		}
	}
	// Exclude the overall top-N most frequent words.
	type wc struct {
		w int32
		n int
	}
	var all []wc
	for w, n := range totalFreq {
		all = append(all, wc{w, n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].w < all[j].w
	})
	excluded := make(map[int32]bool)
	for i := 0; i < topExcluded && i < len(all); i++ {
		excluded[all[i].w] = true
	}
	var qs []wc
	for w, n := range freq {
		if n >= minFreq && !excluded[w] {
			qs = append(qs, wc{w, n})
		}
	}
	sort.Slice(qs, func(i, j int) bool {
		if qs[i].n != qs[j].n {
			return qs[i].n > qs[j].n
		}
		return qs[i].w < qs[j].w
	})
	if len(qs) > maxQ {
		qs = qs[:maxQ]
	}
	out := make([]int32, len(qs))
	for i, q := range qs {
		out[i] = q.w
	}
	return out
}

// relevantUsers returns U*_q: users mentioning q in a diffusing document.
func relevantUsers(g *socialgraph.Graph, q int32) map[int]bool {
	isDiffusing := make([]bool, len(g.Docs))
	for _, e := range g.Diffs {
		isDiffusing[e.I] = true
	}
	rel := make(map[int]bool)
	for i, d := range g.Docs {
		if !isDiffusing[i] {
			continue
		}
		for _, w := range d.Words {
			if w == q {
				rel[int(d.User)] = true
				break
			}
		}
	}
	return rel
}

// rankingRunner bundles a trained ranking-capable model.
type rankingRunner struct {
	name    string
	scores  func(query []int32) []float64
	members [][]int
}

// trainRankingModels trains the Fig. 6 model set on the full graph.
func (o Options) trainRankingModels(g *socialgraph.Graph, c int) []rankingRunner {
	var out []rankingRunner
	seedOf := func(s string) uint64 { return o.Seed ^ uint64(c)<<3 ^ hashName(s) }

	cpd, _, err := core.Train(g, o.cpdConfig(c, core.Config{Seed: seedOf(MCPD)}))
	if err == nil {
		out = append(out, rankingRunner{MCPD, cpd.RankCommunities, cpd.CommunityMembers(5)})
	}
	cold, err := baselines.TrainCOLD(g, baselines.COLDConfig{
		NumCommunities: c, NumTopics: o.Topics, EMIters: o.EMIters,
		Workers: o.Workers, Rho: o.rhoFor(c), Seed: seedOf(MCOLD),
	})
	if err == nil {
		out = append(out, rankingRunner{MCOLD, cold.RankScores, cold.Model.CommunityMembers(5)})
	}
	docs := make([][]int32, len(g.Docs))
	for i := range g.Docs {
		docs[i] = g.Docs[i].Words
	}
	sharedLDA := lda.Train(docs, g.NumWords, lda.Config{NumTopics: o.Topics, Iters: 30, Seed: o.Seed ^ 0x5E6})
	docTheta := make([][]float64, len(g.Docs))
	for i := range g.Docs {
		docTheta[i] = sharedLDA.DocTopics(i)
	}
	if err == nil {
		agg := baselines.Aggregate(g, cold.Model.Pi, sharedLDA, docTheta)
		out = append(out, rankingRunner{MCOLDAgg, agg.RankScores, topKMembers(cold.Membership, g.NumUsers, 5)})
	}
	crm := baselines.TrainCRM(g, baselines.CRMConfig{NumCommunities: c, Iters: o.EMIters * 2, Seed: seedOf(MCRM)})
	aggCRM := baselines.Aggregate(g, crm.Pi, sharedLDA, docTheta)
	out = append(out, rankingRunner{MCRMAgg, aggCRM.RankScores, topKMembers(crm.Membership, g.NumUsers, 5)})
	return out
}

// RunFigure6 regenerates the profile-driven community ranking comparison
// (Fig. 6): MAF@K for K = 1..20 on both datasets, for the community
// sweep's middle values (the paper shows |C| = 50 and 100).
func RunFigure6(o Options) []*Table {
	o = o.withDefaults()
	ks := []int{1, 3, 5, 10, 15, 20}
	var tables []*Table
	for _, ds := range []*Dataset{TwitterDataset(o), DBLPDataset(o)} {
		queries := querySet(ds.Graph, 8, 25, 40)
		if len(queries) == 0 {
			continue
		}
		for _, c := range rankingSweep(o) {
			runners := o.trainRankingModels(ds.Graph, c)
			t := &Table{
				Title:  fmt.Sprintf("Fig 6 community ranking MAF@K — %s, |C|=%d (%d queries)", ds.Name, c, len(queries)),
				Header: append([]string{"model \\ K"}, intHeaders(ks)...),
			}
			for _, rr := range runners {
				mafs := o.rankingCurve(ds.Graph, rr, queries, 20)
				row := []string{rr.name}
				for _, k := range ks {
					row = append(row, f3(mafs[k-1]))
				}
				t.AddRow(row...)
			}
			tables = append(tables, t)
		}
	}
	return tables
}

// rankingSweep picks up to two |C| values for the ranking experiments.
func rankingSweep(o Options) []int {
	sw := o.CommunitySweep
	if len(sw) <= 2 {
		return sw
	}
	return []int{sw[1], sw[2]}
}

// rankingCurve computes the MAF@K curve of one model over the query set.
func (o Options) rankingCurve(g *socialgraph.Graph, rr rankingRunner, queries []int32, maxK int) []float64 {
	var perQP, perQR [][]float64
	for _, q := range queries {
		rel := relevantUsers(g, q)
		if len(rel) == 0 {
			continue
		}
		scores := rr.scores([]int32{q})
		order := topK(scores, len(scores))
		ranked := make([][]int, len(order))
		for i, c := range order {
			ranked[i] = rr.members[c]
		}
		p, r := eval.PrecisionRecallAtK(ranked, rel, maxK)
		perQP = append(perQP, p)
		perQR = append(perQR, r)
	}
	_, _, mafs := eval.MAFCurve(perQP, perQR, maxK)
	return mafs
}

// RunTable6 regenerates Table 6: the top-3 communities ranked for a single
// query, with AP/AR/AF@K and each community's dominant topics.
func RunTable6(o Options) *Table {
	o = o.withDefaults()
	ds := DBLPDataset(o)
	vocab := synth.BuildVocabulary(synth.DBLPLike(o.Scale.users(), o.Seed+1))
	queries := querySet(ds.Graph, 8, 25, 40)
	t := &Table{
		Title:  "Table 6: top three communities ranked for one query (CPD)",
		Header: []string{"K", "AP@K", "AR@K", "AF@K", "topic distribution (top 3)"},
	}
	if len(queries) == 0 {
		t.Notes = append(t.Notes, "no eligible queries at this scale")
		return t
	}
	q := queries[0]
	c := rankingSweep(o)[0]
	m, _, err := core.Train(ds.Graph, o.cpdConfig(c, core.Config{Seed: o.Seed ^ 0x7AB}))
	if err != nil {
		t.Notes = append(t.Notes, "training failed: "+err.Error())
		return t
	}
	scores := m.RankCommunities([]int32{q})
	order := topK(scores, len(scores))
	members := m.CommunityMembers(5)
	ranked := make([][]int, len(order))
	for i, cc := range order {
		ranked[i] = members[cc]
	}
	rel := relevantUsers(ds.Graph, q)
	prec, rec := eval.PrecisionRecallAtK(ranked, rel, 3)
	for k := 1; k <= 3 && k <= len(order); k++ {
		var sp, sr float64
		for i := 0; i < k; i++ {
			sp += prec[i]
			sr += rec[i]
		}
		ap, ar := sp/float64(k), sr/float64(k)
		af := 0.0
		if ap+ar > 0 {
			af = 2 * ap * ar / (ap + ar)
		}
		cc := order[k-1]
		theta := m.Theta.Row(cc)
		tops := topK(theta, 3)
		var parts []string
		for _, z := range tops {
			parts = append(parts, fmt.Sprintf("T%d:%.3f", z, theta[z]))
		}
		t.AddRow(fmt.Sprintf("%d", k), f3(ap), f3(ar), f3(af), strings.Join(parts, ", "))
	}
	t.Notes = append(t.Notes, fmt.Sprintf("query = %q, |C| = %d, %d relevant users", vocab.Word(int(q)), c, len(rel)))
	return t
}

// RunTable5 regenerates Table 5: the top words of the most-used topics.
func RunTable5(o Options) *Table {
	o = o.withDefaults()
	cfg := synth.DBLPLike(o.Scale.users(), o.Seed+1)
	ds := DBLPDataset(o)
	vocab := synth.BuildVocabulary(cfg)
	c := rankingSweep(o)[0]
	t := &Table{
		Title:  "Table 5: top four words in each topic (CPD, DBLP-like)",
		Header: []string{"topic", "word distribution (word:probability)"},
	}
	m, _, err := core.Train(ds.Graph, o.cpdConfig(c, core.Config{Seed: o.Seed ^ 0x7AB}))
	if err != nil {
		t.Notes = append(t.Notes, "training failed: "+err.Error())
		return t
	}
	// Topics ordered by usage (documents assigned).
	usage := make([]float64, o.Topics)
	for _, z := range m.DocTopic {
		usage[z]++
	}
	for _, z := range topK(usage, minInt(8, o.Topics)) {
		var parts []string
		for _, w := range m.TopWords(z, 4) {
			parts = append(parts, fmt.Sprintf("%s:%.3f", vocab.Word(w), m.Phi.At(z, w)))
		}
		t.AddRow(fmt.Sprintf("T%d", z), strings.Join(parts, ", "))
	}
	return t
}

// RunFigure5 regenerates the Fig. 5 case study on the DBLP-like data:
// (a) the individual factor — activeness vs papers cited, popularity vs
// citations received; (b) the topic factor — papers vs citations over
// time for one topic; (c) the community factor — top topics two
// communities cite each other on.
func RunFigure5(o Options) []*Table {
	o = o.withDefaults()
	ds := DBLPDataset(o)
	g := ds.Graph
	var tables []*Table

	// (a) individual factor: quintile bins.
	outDiff := make([]int, g.NumUsers)
	inDiff := make([]int, g.NumUsers)
	for _, e := range g.Diffs {
		outDiff[g.Docs[e.I].User]++
		inDiff[g.Docs[e.J].User]++
	}
	ta := &Table{
		Title:  "Fig 5(a) individual factor — user bins (quintiles) vs diffusion activity",
		Header: []string{"quintile", "avg #cited (by activeness bin)", "avg #citations (by popularity bin)"},
	}
	actBins := quintileMeans(g.NumUsers, func(u int) float64 { return g.Activeness(u) }, outDiff)
	popBins := quintileMeans(g.NumUsers, func(u int) float64 { return g.Popularity(u) }, inDiff)
	for q := 0; q < 5; q++ {
		ta.AddRow(fmt.Sprintf("Q%d", q+1), f3(actBins[q]), f3(popBins[q]))
	}
	ta.Notes = append(ta.Notes, "both columns should increase with the bin — active users cite more, popular users are cited more (supports the individual factor)")
	tables = append(tables, ta)

	// Train CPD once for (b) and (c).
	c := rankingSweep(o)[0]
	m, _, err := core.Train(g, o.cpdConfig(c, core.Config{Seed: o.Seed ^ 0x5CA}))
	if err != nil {
		return tables
	}

	// (b) topic factor: docs vs diffusions per time bucket for the most
	// used topic.
	usage := make([]float64, o.Topics)
	for _, z := range m.DocTopic {
		usage[z]++
	}
	zTop := topK(usage, 1)[0]
	nb := m.NumBuckets
	docsPerT := make([]int, nb)
	diffPerT := make([]int, nb)
	for i := range g.Docs {
		if int(m.DocTopic[i]) == zTop {
			docsPerT[m.DocBucket[i]]++
		}
	}
	for _, e := range g.Diffs {
		if int(m.DocTopic[e.I]) == zTop {
			diffPerT[m.DocBucket[e.I]]++
		}
	}
	tb := &Table{
		Title:  fmt.Sprintf("Fig 5(b) topic factor — #papers vs #citations over time for topic T%d", zTop),
		Header: []string{"time bucket", "#papers", "#citations"},
	}
	for b := 0; b < nb; b++ {
		if docsPerT[b] == 0 && diffPerT[b] == 0 {
			continue
		}
		tb.AddRow(fmt.Sprintf("%d", b), fmt.Sprintf("%d", docsPerT[b]), fmt.Sprintf("%d", diffPerT[b]))
	}
	tb.Notes = append(tb.Notes, fmt.Sprintf("pearson correlation = %.3f (paper: strongly positive)", pearson(docsPerT, diffPerT)))
	tables = append(tables, tb)

	// (c) community factor: top-2 ranked communities for the top query.
	queries := querySet(g, 8, 25, 40)
	if len(queries) > 0 {
		scores := m.RankCommunities(queries[:1])
		order := topK(scores, 2)
		if len(order) == 2 {
			a, b := order[0], order[1]
			tc := &Table{
				Title:  fmt.Sprintf("Fig 5(c) community factor — top topics c%02d and c%02d cite each other on", a, b),
				Header: []string{"direction", "topic", "diffusion strength"},
			}
			for _, ts := range apps.TopDiffusionTopics(m, a, b, 5) {
				tc.AddRow(fmt.Sprintf("c%02d -> c%02d", a, b), fmt.Sprintf("T%d", ts.Community), fmt.Sprintf("%.5f", ts.Score))
			}
			for _, ts := range apps.TopDiffusionTopics(m, b, a, 5) {
				tc.AddRow(fmt.Sprintf("c%02d -> c%02d", b, a), fmt.Sprintf("T%d", ts.Community), fmt.Sprintf("%.5f", ts.Score))
			}
			tables = append(tables, tc)
		}
	}
	return tables
}

// RunFigure7 regenerates the visualization experiment: the aggregated
// diffusion graph, one general topic and one specialized topic, plus the
// openness observation of Sect. 6.3.3. When writeFile is non-nil, DOT
// renderings are handed to it under dotDir.
func RunFigure7(o Options, dotDir string, writeFile func(name string, render func(w io.Writer) error) error) []*Table {
	o = o.withDefaults()
	cfg := synth.DBLPLike(o.Scale.users(), o.Seed+1)
	ds := DBLPDataset(o)
	vocab := synth.BuildVocabulary(cfg)
	c := rankingSweep(o)[0]
	m, _, err := core.Train(ds.Graph, o.cpdConfig(c, core.Config{Seed: o.Seed ^ 0xF16}))
	if err != nil {
		return nil
	}
	// General topic: discussed by the most communities (theta above the
	// uniform level); specialized: the fewest.
	breadth := make([]float64, o.Topics)
	uniform := 1 / float64(o.Topics)
	for z := 0; z < o.Topics; z++ {
		for cc := 0; cc < c; cc++ {
			if m.Theta.At(cc, z) > uniform {
				breadth[z]++
			}
		}
	}
	zGeneral := topK(breadth, 1)[0]
	zSpecial := zGeneral
	for z := range breadth {
		if breadth[z] > 0 && breadth[z] < breadth[zSpecial] {
			zSpecial = z
		}
	}
	var tables []*Table
	for _, spec := range []struct {
		name string
		z    int
	}{
		{"aggregated", -1},
		{fmt.Sprintf("general-topic-T%d", zGeneral), zGeneral},
		{fmt.Sprintf("specialized-topic-T%d", zSpecial), zSpecial},
	} {
		dg := apps.BuildDiffusionGraph(m, vocab, spec.z)
		t := &Table{
			Title:  fmt.Sprintf("Fig 7 diffusion visualization (%s): strongest edges", spec.name),
			Header: []string{"from", "to", "strength"},
		}
		for i, e := range dg.Edges {
			if i >= 10 {
				break
			}
			t.AddRow(fmt.Sprintf("c%02d", e.From), fmt.Sprintf("c%02d", e.To), fmt.Sprintf("%.5f", e.Strength))
		}
		t.Notes = append(t.Notes, fmt.Sprintf("%d above-average edges kept (below-average skipped, as in the paper)", len(dg.Edges)))
		if writeFile != nil && dotDir != "" {
			name := fmt.Sprintf("%s/fig7-%s.dot", dotDir, spec.name)
			if err := writeFile(name, dg.WriteDOT); err == nil {
				t.Notes = append(t.Notes, "DOT written to "+name)
			}
		}
		tables = append(tables, t)
	}
	// Openness.
	open := apps.Openness(m)
	to := &Table{
		Title:  "Fig 7 community openness (above-average inter-community edges touched)",
		Header: []string{"community", "open edges", "label"},
	}
	openF := make([]float64, len(open))
	for i, v := range open {
		openF[i] = float64(v)
	}
	for _, cc := range topK(openF, 3) {
		to.AddRow(fmt.Sprintf("c%02d (open)", cc), fmt.Sprintf("%d", open[cc]), apps.CommunityLabel(m, vocab, cc, 3))
	}
	closed := 0
	for cc := range open {
		if open[cc] < open[closed] {
			closed = cc
		}
	}
	to.AddRow(fmt.Sprintf("c%02d (closed)", closed), fmt.Sprintf("%d", open[closed]), apps.CommunityLabel(m, vocab, closed, 3))
	tables = append(tables, to)
	return tables
}

func quintileMeans(n int, key func(int) float64, val []int) [5]float64 {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return key(idx[i]) < key(idx[j]) })
	var out [5]float64
	for q := 0; q < 5; q++ {
		lo, hi := q*n/5, (q+1)*n/5
		var s float64
		for _, u := range idx[lo:hi] {
			s += float64(val[u])
		}
		if hi > lo {
			out[q] = s / float64(hi-lo)
		}
	}
	return out
}

func pearson(a, b []int) float64 {
	n := len(a)
	if n == 0 || n != len(b) {
		return math.NaN()
	}
	var ma, mb float64
	for i := range a {
		ma += float64(a[i])
		mb += float64(b[i])
	}
	ma /= float64(n)
	mb /= float64(n)
	var cov, va, vb float64
	for i := range a {
		da, db := float64(a[i])-ma, float64(b[i])-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
