package exp

import (
	"fmt"
	"runtime"

	"repro/internal/core"
	"repro/internal/mathx"
	"repro/internal/socialgraph"
)

// scaleIters is the EM iteration count for timing experiments (enough for
// a stable per-sweep average; the sampler's cost per sweep is constant).
const scaleIters = 4

// RunFigure10 regenerates the scalability study: (a) per-sweep E-step time
// versus dataset fraction for serial and parallel training, on both
// datasets; (b) speedup versus core count. Fractions and core counts are
// scaled presets of the paper's {0.1..1.0} x {2,4,6,8} grids.
func RunFigure10(o Options) []*Table {
	o = o.withDefaults()
	fractions := []float64{0.25, 0.5, 0.75, 1.0}
	var tables []*Table

	for _, ds := range []*Dataset{TwitterDataset(o), DBLPDataset(o)} {
		t := &Table{
			Title:  fmt.Sprintf("Fig 10(a) E-step seconds/sweep vs data fraction — %s", ds.Name),
			Header: []string{"fraction", "serial", fmt.Sprintf("parallel (%d cores)", runtime.NumCPU())},
		}
		for _, p := range fractions {
			g := socialgraph.Subsample(ds.Graph, p, o.Seed^uint64(p*1000))
			serial := sweepSeconds(o, g, 1)
			par := sweepSeconds(o, g, runtime.NumCPU())
			t.AddRow(fmt.Sprintf("%.2f", p), fmt.Sprintf("%.3f", serial), fmt.Sprintf("%.3f", par))
		}
		t.Notes = append(t.Notes, "the paper's claim under test: time grows linearly with the data fraction")
		tables = append(tables, t)
	}

	cores := coreSweep()
	for _, ds := range []*Dataset{TwitterDataset(o), DBLPDataset(o)} {
		t := &Table{
			Title:  fmt.Sprintf("Fig 10(b) parallel speedup vs #cores — %s", ds.Name),
			Header: []string{"#cores", "seconds/sweep", "speedup"},
		}
		serial := sweepSeconds(o, ds.Graph, 1)
		t.AddRow("1", fmt.Sprintf("%.3f", serial), "1.00")
		for _, nc := range cores {
			par := sweepSeconds(o, ds.Graph, nc)
			sp := serial / par
			t.AddRow(fmt.Sprintf("%d", nc), fmt.Sprintf("%.3f", par), fmt.Sprintf("%.2f", sp))
		}
		tables = append(tables, t)
	}
	return tables
}

func coreSweep() []int {
	max := runtime.NumCPU()
	var out []int
	for _, nc := range []int{2, 4, 6, 8} {
		if nc <= max {
			out = append(out, nc)
		}
	}
	if len(out) == 0 && max > 1 {
		out = append(out, max)
	}
	return out
}

// sweepSeconds trains briefly and returns the average E-step seconds per
// sweep (first sweep discarded as warmup when possible).
func sweepSeconds(o Options, g *socialgraph.Graph, workers int) float64 {
	c := o.CommunitySweep[len(o.CommunitySweep)/2]
	cfg := o.cpdConfig(c, core.Config{Seed: o.Seed ^ 0x10A})
	cfg.EMIters = scaleIters
	cfg.Workers = workers
	_, diag, err := core.Train(g, cfg)
	if err != nil || len(diag.SweepSeconds) == 0 {
		return nanVal
	}
	ss := diag.SweepSeconds
	if len(ss) > 1 {
		ss = ss[1:]
	}
	return mathx.Mean(ss)
}

// RunFigure11 regenerates the workload-balancing study: estimated versus
// actual per-core E-step workload under the knapsack allocation, on both
// datasets.
func RunFigure11(o Options) []*Table {
	o = o.withDefaults()
	workers := runtime.NumCPU()
	if workers < 2 {
		workers = 2
	}
	var tables []*Table
	for _, ds := range []*Dataset{TwitterDataset(o), DBLPDataset(o)} {
		c := o.CommunitySweep[len(o.CommunitySweep)/2]
		cfg := o.cpdConfig(c, core.Config{Seed: o.Seed ^ 0x11B})
		cfg.EMIters = scaleIters
		cfg.Workers = workers
		_, diag, err := core.Train(ds.Graph, cfg)
		if err != nil || len(diag.WorkerActual) == 0 {
			continue
		}
		// Normalize estimates to the actual total so the two columns are
		// comparable (the estimate is an operation count, not seconds).
		estSum := mathx.Sum(diag.WorkerEstimated)
		actSum := mathx.Sum(diag.WorkerActual)
		scale := 1.0
		if estSum > 0 {
			scale = actSum / estSum
		}
		t := &Table{
			Title:  fmt.Sprintf("Fig 11 workload balancing (knapsack allocation over %d segments) — %s", diag.Segments, ds.Name),
			Header: []string{"core", "estimated (s-equiv)", "actual (s)"},
		}
		for w := 0; w < workers; w++ {
			t.AddRow(fmt.Sprintf("%d", w+1),
				fmt.Sprintf("%.3f", diag.WorkerEstimated[w]*scale),
				fmt.Sprintf("%.3f", diag.WorkerActual[w]))
		}
		imb := imbalance(diag.WorkerActual)
		t.Notes = append(t.Notes, fmt.Sprintf("actual max/mean imbalance = %.2f (1.00 is perfect balance)", imb))
		tables = append(tables, t)
	}
	return tables
}

func imbalance(loads []float64) float64 {
	if len(loads) == 0 {
		return nanVal
	}
	mean := mathx.Mean(loads)
	if mean == 0 {
		return nanVal
	}
	max := loads[0]
	for _, l := range loads[1:] {
		if l > max {
			max = l
		}
	}
	return max / mean
}
