package exp

import (
	"fmt"
	"runtime"

	"repro/internal/core"
	"repro/internal/mathx"
	"repro/internal/socialgraph"
)

// scaleIters is the number of timed sweeps for the scalability experiments
// (enough for a stable per-sweep average; the sampler's cost per sweep is
// constant).
const scaleIters = 4

// RunFigure10 regenerates the scalability study: (a) per-sweep E-step time
// versus dataset fraction for serial and parallel training, on both
// datasets; (b) speedup versus worker count. Fractions and worker counts
// are scaled presets of the paper's {0.1..1.0} x {2,4,6,8} grids. The
// timings drive core.Engine directly — the exact code path Train uses — so
// the figures measure production sweeps, not a parallel harness of their
// own.
func RunFigure10(o Options) []*Table {
	o = o.withDefaults()
	fractions := []float64{0.25, 0.5, 0.75, 1.0}
	var tables []*Table

	parWorkers := runtime.NumCPU()
	if parWorkers < 2 {
		parWorkers = 2
	}
	for _, ds := range []*Dataset{TwitterDataset(o), DBLPDataset(o)} {
		t := &Table{
			Title:  fmt.Sprintf("Fig 10(a) E-step seconds/sweep vs data fraction — %s", ds.Name),
			Header: []string{"fraction", "serial", fmt.Sprintf("parallel (%d workers)", parWorkers)},
		}
		for _, p := range fractions {
			g := socialgraph.Subsample(ds.Graph, p, o.Seed^uint64(p*1000))
			serial := sweepSeconds(o, g, 1)
			par := sweepSeconds(o, g, parWorkers)
			t.AddRow(fmt.Sprintf("%.2f", p), fmt.Sprintf("%.3f", serial), fmt.Sprintf("%.3f", par))
		}
		t.Notes = append(t.Notes, "the paper's claim under test: time grows linearly with the data fraction")
		tables = append(tables, t)
	}

	workers := coreSweep()
	for _, ds := range []*Dataset{TwitterDataset(o), DBLPDataset(o)} {
		t := &Table{
			Title:  fmt.Sprintf("Fig 10(b) parallel speedup vs #workers — %s", ds.Name),
			Header: []string{"#workers", "seconds/sweep", "speedup"},
		}
		serial := sweepSeconds(o, ds.Graph, 1)
		t.AddRow("1", fmt.Sprintf("%.3f", serial), "1.00")
		for _, nw := range workers {
			par := sweepSeconds(o, ds.Graph, nw)
			sp := serial / par
			t.AddRow(fmt.Sprintf("%d", nw), fmt.Sprintf("%.3f", par), fmt.Sprintf("%.2f", sp))
		}
		if max := runtime.NumCPU(); max < workers[len(workers)-1] {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"only %d hardware core(s): workers are goroutines, so rows beyond %d measure scheduling overhead, not parallel speedup", max, max))
		}
		tables = append(tables, t)
	}
	return tables
}

// coreSweep returns the worker counts Fig. 10(b) sweeps. Engine workers are
// goroutines — a logical parameter decoupled from the physical core count,
// with results bit-identical for every value — so the paper's {2,4,6,8}
// grid is swept unconditionally. A machine with fewer cores annotates the
// table (see RunFigure10) instead of truncating the sweep: on a single-CPU
// host the table must still have all its rows.
func coreSweep() []int {
	return []int{2, 4, 6, 8}
}

// sweepSeconds times scaleIters engine sweeps (after one warm-up sweep)
// and returns the average E-step seconds per sweep.
func sweepSeconds(o Options, g *socialgraph.Graph, workers int) float64 {
	c := o.CommunitySweep[len(o.CommunitySweep)/2]
	cfg := o.cpdConfig(c, core.Config{Seed: o.Seed ^ 0x10A})
	cfg.EMIters = scaleIters
	cfg.Workers = workers
	eng, err := core.NewEngine(g, cfg)
	if err != nil {
		return nanVal
	}
	defer eng.Close()
	for i := 0; i < scaleIters+1; i++ {
		eng.Sweep()
	}
	ss := eng.Diagnostics().SweepSeconds
	if len(ss) == 0 {
		return nanVal
	}
	if len(ss) > 1 {
		ss = ss[1:] // discard the warm-up sweep
	}
	return mathx.Mean(ss)
}

// RunFigure11 regenerates the workload-balancing study: estimated versus
// actual per-worker E-step workload under the knapsack allocation, on both
// datasets. A failed training run aborts the experiment with an error —
// an empty figure is a bug, not a result.
func RunFigure11(o Options) ([]*Table, error) {
	o = o.withDefaults()
	workers := runtime.NumCPU()
	if workers < 2 {
		workers = 2
	}
	var tables []*Table
	for _, ds := range []*Dataset{TwitterDataset(o), DBLPDataset(o)} {
		c := o.CommunitySweep[len(o.CommunitySweep)/2]
		cfg := o.cpdConfig(c, core.Config{Seed: o.Seed ^ 0x11B})
		cfg.EMIters = scaleIters
		cfg.Workers = workers
		_, diag, err := core.Train(ds.Graph, cfg)
		if err != nil {
			return nil, fmt.Errorf("fig 11: training on %s: %w", ds.Name, err)
		}
		if len(diag.WorkerActual) != workers || len(diag.WorkerEstimated) != workers {
			return nil, fmt.Errorf("fig 11: %s: expected %d-worker diagnostics, got %d estimated / %d actual",
				ds.Name, workers, len(diag.WorkerEstimated), len(diag.WorkerActual))
		}
		// Normalize estimates to the actual total so the two columns are
		// comparable (the estimate is an operation count, not seconds).
		estSum := mathx.Sum(diag.WorkerEstimated)
		actSum := mathx.Sum(diag.WorkerActual)
		scale := 1.0
		if estSum > 0 {
			scale = actSum / estSum
		}
		t := &Table{
			Title:  fmt.Sprintf("Fig 11 workload balancing (knapsack allocation over %d segments) — %s", diag.Segments, ds.Name),
			Header: []string{"worker", "estimated (s-equiv)", "actual (s)"},
		}
		for w := 0; w < workers; w++ {
			t.AddRow(fmt.Sprintf("%d", w+1),
				fmt.Sprintf("%.3f", diag.WorkerEstimated[w]*scale),
				fmt.Sprintf("%.3f", diag.WorkerActual[w]))
		}
		imb := imbalance(diag.WorkerActual)
		t.Notes = append(t.Notes, fmt.Sprintf("actual max/mean imbalance = %.2f (1.00 is perfect balance)", imb))
		if diag.Repacks > 0 {
			t.Notes = append(t.Notes, fmt.Sprintf("engine re-ran the knapsack packing %d time(s) on measured drift", diag.Repacks))
		}
		tables = append(tables, t)
	}
	return tables, nil
}

func imbalance(loads []float64) float64 {
	if len(loads) == 0 {
		return nanVal
	}
	mean := mathx.Mean(loads)
	if mean == 0 {
		return nanVal
	}
	max := loads[0]
	for _, l := range loads[1:] {
		if l > max {
			max = l
		}
	}
	return max / mean
}
