package exp

import (
	"sync"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/lda"
	"repro/internal/socialgraph"
	"repro/internal/sparse"
)

// Model names used across the figures. The harness trains each only when a
// figure in the requested set needs it.
const (
	MCPD      = "Ours"
	MNoJoint  = "No Joint Modeling"
	MNoHet    = "No Heterogeneity"
	MNoIndTop = "No Individual & Topic"
	MNoTopic  = "No Topic"
	MPMTLM    = "PMTLM"
	MWTM      = "WTM"
	MCRM      = "CRM"
	MCOLD     = "COLD"
	MCRMAgg   = "CRM+Agg"
	MCOLDAgg  = "COLD+Agg"
)

// metrics holds one model's scores on one fold. NaN marks "not
// applicable" (e.g. WTM has no communities, so no conductance).
type metrics struct {
	fAUC, dAUC, cond, perp float64
}

// trained wraps a trained model behind the three capability closures the
// metric code needs; nil closures mark unsupported tasks.
type trained struct {
	membership     func(u int) []float64
	friendScore    func(u, v int) float64
	diffusionScore func(g *socialgraph.Graph, i, j int) float64
	wordProb       func(u int, w int32) float64
}

// cpdConfig builds the CPD-family config for a cell.
func (o Options) cpdConfig(c int, flags core.Config) core.Config {
	flags.NumCommunities = c
	flags.NumTopics = o.Topics
	flags.EMIters = o.EMIters
	flags.Workers = o.Workers
	flags.Rho = o.rhoFor(c)
	if flags.Seed == 0 {
		flags.Seed = o.Seed ^ uint64(c)<<8
	}
	return flags
}

func adaptCPD(m *core.Model) trained {
	var once sync.Once
	var profile *sparse.Dense
	return trained{
		membership:  func(u int) []float64 { return m.Pi.Row(u) },
		friendScore: m.FriendshipProb,
		diffusionScore: func(g *socialgraph.Graph, i, j int) float64 {
			return m.DiffusionProb(g, int(g.Docs[i].User), j, m.DocBucket[i])
		},
		// Fig. 8 evaluates the content profile itself: how well a user's
		// top community's word distribution generates her content.
		wordProb: func(u int, w int32) float64 {
			once.Do(func() { profile = m.ProfileWordProbs() })
			return profile.At(m.TopCommunity(u), int(w))
		},
	}
}

// trainModel trains the named model for a cell (training graph gtr with
// held-out links removed; shared per-fold LDA for the models that need
// one). It returns the adapter or ok=false when the model cannot run on
// this dataset.
func (o Options) trainModel(name string, gtr *socialgraph.Graph, c int, sharedLDA *lda.Model, docTheta [][]float64, seed uint64) (trained, bool) {
	switch name {
	case MCPD, MNoJoint, MNoHet, MNoIndTop, MNoTopic:
		flags := core.Config{Seed: seed}
		switch name {
		case MNoJoint:
			flags.NoJointModeling = true
		case MNoHet:
			flags.NoHeterogeneity = true
		case MNoIndTop:
			flags.NoIndividual = true
			flags.NoTopicPopularity = true
		case MNoTopic:
			flags.NoTopicPopularity = true
		}
		m, _, err := core.Train(gtr, o.cpdConfig(c, flags))
		if err != nil {
			return trained{}, false
		}
		return adaptCPD(m), true

	case MPMTLM:
		m := baselines.TrainPMTLM(gtr, baselines.PMTLMConfig{
			NumTopics: c, LDAIters: 30, Seed: seed,
		})
		return trained{
			membership:     m.Membership,
			friendScore:    m.FriendshipScore,
			diffusionScore: m.DiffusionScore,
		}, true

	case MWTM:
		m := baselines.TrainWTM(gtr, baselines.WTMConfig{
			NumTopics: o.Topics, LDAIters: 30, Seed: seed,
		})
		return trained{diffusionScore: m.DiffusionScore}, true

	case MCRM:
		m := baselines.TrainCRM(gtr, baselines.CRMConfig{
			NumCommunities: c, Iters: o.EMIters * 2, Seed: seed,
		})
		return trained{
			membership:     m.Membership,
			friendScore:    m.FriendshipScore,
			diffusionScore: m.DiffusionScore,
		}, true

	case MCOLD:
		m, err := baselines.TrainCOLD(gtr, baselines.COLDConfig{
			NumCommunities: c, NumTopics: o.Topics, EMIters: o.EMIters,
			Workers: o.Workers, Rho: o.rhoFor(c), Seed: seed,
		})
		if err != nil {
			return trained{}, false
		}
		return trained{
			membership:     m.Membership,
			friendScore:    m.FriendshipScore,
			diffusionScore: m.DiffusionScore,
		}, true

	case MCRMAgg:
		crm := baselines.TrainCRM(gtr, baselines.CRMConfig{
			NumCommunities: c, Iters: o.EMIters * 2, Seed: seed,
		})
		agg := baselines.Aggregate(gtr, crm.Pi, sharedLDA, docTheta)
		return trained{
			membership:     crm.Membership,
			friendScore:    crm.FriendshipScore,
			diffusionScore: agg.DiffusionScore,
			wordProb:       aggProfileWordProb(agg, gtr.NumWords),
		}, true

	case MCOLDAgg:
		cold, err := baselines.TrainCOLD(gtr, baselines.COLDConfig{
			NumCommunities: c, NumTopics: o.Topics, EMIters: o.EMIters,
			Workers: o.Workers, Rho: o.rhoFor(c), Seed: seed,
		})
		if err != nil {
			return trained{}, false
		}
		agg := baselines.Aggregate(gtr, cold.Model.Pi, sharedLDA, docTheta)
		return trained{
			membership:     cold.Membership,
			friendScore:    cold.FriendshipScore,
			diffusionScore: agg.DiffusionScore,
			wordProb:       aggProfileWordProb(agg, gtr.NumWords),
		}, true
	}
	return trained{}, false
}

// aggProfileWordProb builds the Fig. 8 profile-level word probability for
// an aggregation baseline, lazily materialising the profile matrix.
func aggProfileWordProb(agg *baselines.Aggregated, numWords int) func(u int, w int32) float64 {
	var once sync.Once
	var profile *sparse.Dense
	return func(u int, w int32) float64 {
		once.Do(func() { profile = agg.ProfileWordProbs(numWords) })
		return profile.At(agg.TopCommunity(u), int(w))
	}
}

// gridResult indexes per-fold metrics by |C| then model name.
type gridResult map[int]map[string][]metrics

// runGrid executes the cross-validated grid: for every |C| in the sweep
// and every fold, hold out 1/folds of friendship and diffusion links,
// train every requested model on the rest and score the held-out links
// (AUC vs sampled negatives), the detection quality (conductance of top-5
// membership sets over the full friendship graph) and — where supported —
// the content-profile perplexity.
func (o Options) runGrid(ds *Dataset, models []string) gridResult {
	g := ds.Graph
	fFolds := eval.KFold(len(g.Friends), o.Folds, o.Seed^0xF01D)
	eFolds := eval.KFold(len(g.Diffs), o.Folds, o.Seed^0xE01D)

	out := make(gridResult)
	for _, c := range o.CommunitySweep {
		out[c] = make(map[string][]metrics)
	}
	for fold := 0; fold < o.Folds; fold++ {
		fTrain, fTest := eval.SplitByFold(fFolds, fold)
		eTrain, eTest := eval.SplitByFold(eFolds, fold)
		gtr := holdout(g, fTrain, eTrain)
		gtr.BuildIndexes()

		// Shared per-fold LDA for WTM and the +Agg baselines.
		var sharedLDA *lda.Model
		var docTheta [][]float64
		needsLDA := false
		for _, name := range models {
			if name == MCRMAgg || name == MCOLDAgg {
				needsLDA = true
			}
		}
		if needsLDA {
			docs := make([][]int32, len(gtr.Docs))
			for i := range gtr.Docs {
				docs[i] = gtr.Docs[i].Words
			}
			sharedLDA = lda.Train(docs, gtr.NumWords, lda.Config{
				NumTopics: o.Topics, Iters: 30, Seed: o.Seed ^ uint64(fold),
			})
			docTheta = make([][]float64, len(gtr.Docs))
			for i := range gtr.Docs {
				docTheta[i] = sharedLDA.DocTopics(i)
			}
		}

		negUsers := eval.SampleNegativePairs(g, len(fTest), o.Seed^uint64(fold)<<4)
		negDocs := eval.SampleNegativeDocPairs(g, len(eTest), o.Seed^uint64(fold)<<5)

		for _, c := range o.CommunitySweep {
			for _, name := range models {
				seed := o.Seed ^ uint64(fold)<<16 ^ uint64(c)<<2 ^ hashName(name)
				tm, ok := o.trainModel(name, gtr, c, sharedLDA, docTheta, seed)
				if !ok {
					continue
				}
				out[c][name] = append(out[c][name], o.scoreModel(tm, g, fTest, eTest, negUsers, negDocs))
			}
		}
	}
	return out
}

// scoreModel computes the fold metrics for one trained model.
func (o Options) scoreModel(tm trained, g *socialgraph.Graph, fTest, eTest []int, negUsers, negDocs [][2]int) metrics {
	nan := func() float64 { return nanVal }
	m := metrics{fAUC: nan(), dAUC: nan(), cond: nan(), perp: nan()}
	if tm.friendScore != nil {
		pos := make([]float64, 0, len(fTest))
		for _, li := range fTest {
			f := g.Friends[li]
			pos = append(pos, tm.friendScore(int(f.U), int(f.V)))
		}
		neg := make([]float64, 0, len(negUsers))
		for _, p := range negUsers {
			neg = append(neg, tm.friendScore(p[0], p[1]))
		}
		m.fAUC = eval.AUC(pos, neg)
	}
	if tm.diffusionScore != nil {
		pos := make([]float64, 0, len(eTest))
		for _, ei := range eTest {
			e := g.Diffs[ei]
			pos = append(pos, tm.diffusionScore(g, int(e.I), int(e.J)))
		}
		neg := make([]float64, 0, len(negDocs))
		for _, p := range negDocs {
			neg = append(neg, tm.diffusionScore(g, p[0], p[1]))
		}
		m.dAUC = eval.AUC(pos, neg)
	}
	if tm.membership != nil {
		members := topKMembers(tm.membership, g.NumUsers, 5)
		m.cond = eval.Conductance(g, members)
	}
	if tm.wordProb != nil {
		m.perp = eval.Perplexity(tm.wordProb, g.Docs)
	}
	return m
}

var nanVal = func() float64 {
	var z float64
	return 0 / z // NaN without importing math here
}()

// topKMembers builds per-community member sets from a membership function
// using the paper's top-k convention.
func topKMembers(membership func(u int) []float64, numUsers, k int) [][]int {
	var members [][]int
	for u := 0; u < numUsers; u++ {
		row := membership(u)
		if members == nil {
			members = make([][]int, len(row))
		}
		idx := topK(row, k)
		for _, c := range idx {
			members[c] = append(members[c], u)
		}
	}
	return members
}

func topK(xs []float64, k int) []int {
	if k > len(xs) {
		k = len(xs)
	}
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			if xs[idx[j]] > xs[idx[best]] {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	return idx[:k]
}

func hashName(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// avg aggregates a metric over folds, skipping NaNs.
func avg(ms []metrics, pick func(metrics) float64) float64 {
	var s float64
	var n int
	for _, m := range ms {
		v := pick(m)
		if v == v { // not NaN
			s += v
			n++
		}
	}
	if n == 0 {
		return nanVal
	}
	return s / float64(n)
}
