// Package mathx provides the numeric kernel shared by the CPD sampler, the
// baselines and the evaluation code: stable logistic-family functions,
// special functions (digamma, regularized incomplete beta, normal CDF) and
// the Student-t tail probability used for the paper's significance tests.
//
// Everything here is pure stdlib; the implementations favour numerical
// stability over raw speed except where noted.
package mathx

import (
	"errors"
	"math"
)

// Sigmoid returns 1/(1+exp(-x)) computed without overflow for large |x|.
func Sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

// LogSigmoid returns log(sigmoid(x)) = -log(1+exp(-x)) stably.
func LogSigmoid(x float64) float64 {
	return -Log1pExp(-x)
}

// Log1pExp returns log(1+exp(x)) without overflow.
func Log1pExp(x float64) float64 {
	switch {
	case x > 35:
		return x
	case x < -35:
		return math.Exp(x)
	default:
		return math.Log1p(math.Exp(x))
	}
}

// Logit is the inverse of Sigmoid. It panics outside (0,1).
func Logit(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic("mathx: Logit argument outside (0,1)")
	}
	return math.Log(p / (1 - p))
}

// LogSumExp returns log(sum_i exp(xs[i])) stably. It returns -Inf for an
// empty slice.
func LogSumExp(xs []float64) float64 {
	if len(xs) == 0 {
		return math.Inf(-1)
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	if math.IsInf(m, -1) {
		return m
	}
	var s float64
	for _, x := range xs {
		s += math.Exp(x - m)
	}
	return m + math.Log(s)
}

// Softmax overwrites dst with the softmax of src (dst and src may alias).
// It panics if the slices have different lengths.
func Softmax(dst, src []float64) {
	if len(dst) != len(src) {
		panic("mathx: Softmax length mismatch")
	}
	if len(src) == 0 {
		return
	}
	m := src[0]
	for _, x := range src[1:] {
		if x > m {
			m = x
		}
	}
	var s float64
	for i, x := range src {
		e := math.Exp(x - m)
		dst[i] = e
		s += e
	}
	for i := range dst {
		dst[i] /= s
	}
}

// LogGamma returns log|Gamma(x)|.
func LogGamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// LogBeta returns log Beta(a, b) = lgamma(a)+lgamma(b)-lgamma(a+b).
func LogBeta(a, b float64) float64 {
	return LogGamma(a) + LogGamma(b) - LogGamma(a+b)
}

// Digamma returns the digamma function psi(x) for x > 0, using the
// recurrence psi(x) = psi(x+1) - 1/x to reach the asymptotic region and a
// standard Bernoulli-number expansion there.
func Digamma(x float64) float64 {
	if x <= 0 && x == math.Floor(x) {
		return math.NaN()
	}
	var result float64
	// Reflection for negative non-integer arguments.
	if x < 0 {
		result -= math.Pi / math.Tan(math.Pi*x)
		x = 1 - x
	}
	for x < 6 {
		result -= 1 / x
		x++
	}
	inv := 1 / x
	inv2 := inv * inv
	result += math.Log(x) - 0.5*inv -
		inv2*(1.0/12-inv2*(1.0/120-inv2*(1.0/252-inv2*(1.0/240-inv2/132*4.0/4))))
	return result
}

// NormCDF returns the standard normal CDF at x.
func NormCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormPDF returns the standard normal density at x.
func NormPDF(x float64) float64 {
	return math.Exp(-0.5*x*x) / math.Sqrt(2*math.Pi)
}

// RegIncBeta returns the regularized incomplete beta function I_x(a, b) for
// a, b > 0 and x in [0,1], via the continued-fraction expansion (Lentz).
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	case a <= 0 || b <= 0:
		return math.NaN()
	}
	lbeta := LogBeta(a, b)
	front := math.Exp(a*math.Log(x)+b*math.Log(1-x)-lbeta) / a
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x)
	}
	// Symmetry relation I_x(a,b) = 1 - I_{1-x}(b,a).
	frontSym := math.Exp(b*math.Log(1-x)+a*math.Log(x)-lbeta) / b
	return 1 - frontSym*betaCF(b, a, 1-x)
}

// betaCF evaluates the continued fraction for the incomplete beta function
// using the modified Lentz method.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		tiny    = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// StudentTTail returns P(T > t) for a Student-t variable with df degrees of
// freedom, t >= 0. For t < 0 it returns 1 - P(T > -t).
func StudentTTail(t, df float64) float64 {
	if df <= 0 {
		return math.NaN()
	}
	if t < 0 {
		return 1 - StudentTTail(-t, df)
	}
	x := df / (df + t*t)
	return 0.5 * RegIncBeta(df/2, 0.5, x)
}

// ErrTTest is returned by PairedTTest for degenerate inputs.
var ErrTTest = errors.New("mathx: paired t-test requires >=2 paired samples with nonzero variance")

// PairedTTestOneTailed performs a paired, one-tailed Student t-test of the
// hypothesis mean(a) > mean(b) and returns the p-value. This is the test the
// paper applies to its 10-fold cross-validation scores ("student's t-test
// one-tailed p-value p < 0.01").
func PairedTTestOneTailed(a, b []float64) (p float64, err error) {
	if len(a) != len(b) || len(a) < 2 {
		return math.NaN(), ErrTTest
	}
	n := float64(len(a))
	diffs := make([]float64, len(a))
	for i := range a {
		diffs[i] = a[i] - b[i]
	}
	mean := Mean(diffs)
	sd := StdDev(diffs)
	if sd == 0 {
		if mean > 0 {
			return 0, nil
		}
		return 1, nil
	}
	t := mean / (sd / math.Sqrt(n))
	return StudentTTail(t, n-1), nil
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (0 when len < 2).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Dot returns the dense dot product of a and b. It panics on length
// mismatch.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mathx: Dot length mismatch")
	}
	var s float64
	for i, x := range a {
		s += x * b[i]
	}
	return s
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Normalize scales xs in place so it sums to 1. If the sum is not positive
// it sets the uniform distribution instead and reports false.
func Normalize(xs []float64) bool {
	s := Sum(xs)
	if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		u := 1 / float64(len(xs))
		for i := range xs {
			xs[i] = u
		}
		return false
	}
	inv := 1 / s
	for i := range xs {
		xs[i] *= inv
	}
	return true
}

// Clamp bounds x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// MaxIndex returns the index of the largest element (first on ties), or -1
// for an empty slice.
func MaxIndex(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

// TopKIndices returns the indices of the k largest elements of xs in
// descending order of value. k is truncated to len(xs).
func TopKIndices(xs []float64, k int) []int {
	if k > len(xs) {
		k = len(xs)
	}
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	// Partial selection sort: k is small (<=20) in every caller.
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			if xs[idx[j]] > xs[idx[best]] {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	return idx[:k]
}
