package mathx

import (
	"math"
	"testing"
)

// Edge-case and property-style tests for the numeric kernel: empty
// inputs, single-element distributions, and the extreme log-space values
// the samplers produce on degenerate scenario data.

func TestLogSumExpEdges(t *testing.T) {
	negInf := math.Inf(-1)
	cases := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, negInf},
		{"single", []float64{3.5}, 3.5},
		{"single extreme negative", []float64{-1e308}, -1e308},
		{"all -Inf", []float64{negInf, negInf}, negInf},
		{"huge values no overflow", []float64{709, 710}, 710 + math.Log(1+math.Exp(-1))},
		{"tiny values no underflow", []float64{-745, -746}, -745 + math.Log(1+math.Exp(-1))},
		{"mixed with -Inf", []float64{negInf, 0}, math.Log(1)},
	}
	for _, tc := range cases {
		got := LogSumExp(tc.xs)
		if math.IsInf(tc.want, -1) {
			if !math.IsInf(got, -1) {
				t.Errorf("%s: LogSumExp = %v, want -Inf", tc.name, got)
			}
			continue
		}
		if math.Abs(got-tc.want) > 1e-9*math.Max(1, math.Abs(tc.want)) {
			t.Errorf("%s: LogSumExp = %v, want %v", tc.name, got, tc.want)
		}
	}
	// Shift invariance: LSE(x + c) = LSE(x) + c, even for large c.
	xs := []float64{-2, 0, 1.5}
	base := LogSumExp(xs)
	for _, c := range []float64{700, -700, 1e5} {
		shifted := make([]float64, len(xs))
		for i, x := range xs {
			shifted[i] = x + c
		}
		if got := LogSumExp(shifted); math.Abs(got-(base+c)) > 1e-9*math.Max(1, math.Abs(base+c)) {
			t.Errorf("shift %v: LSE = %v, want %v", c, got, base+c)
		}
	}
}

func TestSigmoidFamilyExtremes(t *testing.T) {
	if got := Sigmoid(1000); got != 1 {
		t.Errorf("Sigmoid(1000) = %v", got)
	}
	if got := Sigmoid(-1000); got != 0 {
		t.Errorf("Sigmoid(-1000) = %v", got)
	}
	if got := Sigmoid(0); got != 0.5 {
		t.Errorf("Sigmoid(0) = %v", got)
	}
	// Symmetry σ(-x) = 1 - σ(x) across the stable range.
	for _, x := range []float64{0.1, 1, 10, 30, 100} {
		if diff := math.Abs(Sigmoid(-x) - (1 - Sigmoid(x))); diff > 1e-15 {
			t.Errorf("sigmoid symmetry broken at %v: diff %v", x, diff)
		}
	}
	// LogSigmoid stays finite and negative where naive log(sigmoid)
	// underflows to -Inf.
	if got := LogSigmoid(-800); math.IsInf(got, 0) || got > -799 {
		t.Errorf("LogSigmoid(-800) = %v", got)
	}
	if got := LogSigmoid(800); got != 0 && got > 0 {
		t.Errorf("LogSigmoid(800) = %v", got)
	}
	// Log1pExp is continuous across both branch cuts (±35).
	for _, x := range []float64{-35, 35} {
		lo, hi := Log1pExp(x-1e-9), Log1pExp(x+1e-9)
		if math.Abs(hi-lo) > 1e-6 {
			t.Errorf("Log1pExp discontinuous at %v: %v vs %v", x, lo, hi)
		}
	}
}

func TestSoftmaxEdges(t *testing.T) {
	// Single element is a point mass regardless of magnitude.
	for _, x := range []float64{0, -1e308, 709} {
		dst := []float64{math.NaN()}
		Softmax(dst, []float64{x})
		if dst[0] != 1 {
			t.Errorf("Softmax([%v]) = %v", x, dst[0])
		}
	}
	// -Inf logits get exactly zero mass, the rest renormalizes.
	dst := make([]float64, 3)
	Softmax(dst, []float64{0, math.Inf(-1), 0})
	if dst[1] != 0 || math.Abs(dst[0]-0.5) > 1e-15 {
		t.Errorf("Softmax with -Inf = %v", dst)
	}
	// Empty softmax is a no-op.
	Softmax(nil, nil)
	// Aliasing dst == src is allowed.
	buf := []float64{1, 2, 3}
	Softmax(buf, buf)
	var sum float64
	for _, v := range buf {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("aliased softmax sums to %v", sum)
	}
}

func TestNormalizeDegenerate(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		ok   bool
	}{
		{"all zero", []float64{0, 0, 0, 0}, false},
		{"negative sum", []float64{-1, 0.25}, false},
		{"NaN", []float64{math.NaN(), 1}, false},
		{"+Inf", []float64{math.Inf(1), 1}, false},
		{"single element", []float64{42}, true},
	}
	for _, tc := range cases {
		got := Normalize(tc.xs)
		if got != tc.ok {
			t.Errorf("%s: Normalize = %v, want %v", tc.name, got, tc.ok)
			continue
		}
		var sum float64
		for _, v := range tc.xs {
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("%s: normalized sum = %v", tc.name, sum)
		}
		if !tc.ok {
			u := 1 / float64(len(tc.xs))
			for i, v := range tc.xs {
				if v != u {
					t.Errorf("%s: fallback[%d] = %v, want uniform %v", tc.name, i, v, u)
				}
			}
		}
	}
}

func TestTopKIndicesEdges(t *testing.T) {
	if got := TopKIndices(nil, 3); len(got) != 0 {
		t.Errorf("TopK of empty = %v", got)
	}
	if got := TopKIndices([]float64{1, 2}, 0); len(got) != 0 {
		t.Errorf("TopK k=0 = %v", got)
	}
	if got := TopKIndices([]float64{5}, 10); len(got) != 1 || got[0] != 0 {
		t.Errorf("TopK k>len = %v", got)
	}
	// Ties resolve to the first index, making serving output stable.
	if got := TopKIndices([]float64{7, 7, 7}, 2); got[0] != 0 || got[1] != 1 {
		t.Errorf("tied TopK = %v", got)
	}
	if got := MaxIndex(nil); got != -1 {
		t.Errorf("MaxIndex(empty) = %v", got)
	}
}

func TestMomentsDegenerate(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || StdDev([]float64{5}) != 0 {
		t.Error("empty/singleton moments must be 0")
	}
	if Sum(nil) != 0 {
		t.Error("empty sum must be 0")
	}
}

func TestPairedTTestDegenerate(t *testing.T) {
	if _, err := PairedTTestOneTailed([]float64{1}, []float64{2}); err == nil {
		t.Error("single pair accepted")
	}
	if _, err := PairedTTestOneTailed([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	// Zero variance, positive mean difference: certain win, p = 0.
	if p, err := PairedTTestOneTailed([]float64{2, 3, 4}, []float64{1, 2, 3}); err != nil || p != 0 {
		t.Errorf("constant positive diff: p=%v err=%v", p, err)
	}
	// Zero variance, non-positive difference: p = 1.
	if p, err := PairedTTestOneTailed([]float64{1, 2}, []float64{1, 2}); err != nil || p != 1 {
		t.Errorf("identical samples: p=%v err=%v", p, err)
	}
}

func TestSpecialFunctionIdentities(t *testing.T) {
	// Digamma recurrence ψ(x+1) = ψ(x) + 1/x over a wide range.
	for _, x := range []float64{1e-3, 0.5, 1, 3.7, 50, 1e4} {
		lhs, rhs := Digamma(x+1), Digamma(x)+1/x
		if math.Abs(lhs-rhs) > 1e-8*math.Max(1, math.Abs(rhs)) {
			t.Errorf("digamma recurrence fails at %v: %v vs %v", x, lhs, rhs)
		}
	}
	if !math.IsNaN(Digamma(0)) || !math.IsNaN(Digamma(-2)) {
		t.Error("digamma at non-positive integers must be NaN")
	}
	// Incomplete beta bounds and symmetry I_x(a,b) = 1 - I_{1-x}(b,a).
	if RegIncBeta(2, 3, 0) != 0 || RegIncBeta(2, 3, 1) != 1 {
		t.Error("RegIncBeta bounds broken")
	}
	if !math.IsNaN(RegIncBeta(0, 1, 0.5)) {
		t.Error("RegIncBeta with a<=0 must be NaN")
	}
	for _, tc := range [][3]float64{{2, 5, 0.3}, {0.5, 0.5, 0.9}, {10, 1, 0.01}} {
		a, b, x := tc[0], tc[1], tc[2]
		lhs := RegIncBeta(a, b, x)
		rhs := 1 - RegIncBeta(b, a, 1-x)
		if math.Abs(lhs-rhs) > 1e-10 {
			t.Errorf("RegIncBeta symmetry fails at (%v,%v,%v): %v vs %v", a, b, x, lhs, rhs)
		}
	}
	// Normal CDF symmetry and extremes.
	if math.Abs(NormCDF(0)-0.5) > 1e-15 || NormCDF(40) != 1 || NormCDF(-40) != 0 {
		t.Error("NormCDF extremes broken")
	}
	for _, x := range []float64{0.3, 1, 2.5} {
		if diff := math.Abs(NormCDF(-x) - (1 - NormCDF(x))); diff > 1e-12 {
			t.Errorf("NormCDF symmetry fails at %v: diff %v", x, diff)
		}
	}
	// Student-t tails: df<=0 is NaN, t=0 is one half, symmetry holds.
	if !math.IsNaN(StudentTTail(1, 0)) {
		t.Error("StudentTTail with df=0 must be NaN")
	}
	if math.Abs(StudentTTail(0, 5)-0.5) > 1e-12 {
		t.Error("StudentTTail(0) must be 0.5")
	}
	if diff := math.Abs(StudentTTail(-2, 7) - (1 - StudentTTail(2, 7))); diff > 1e-12 {
		t.Errorf("StudentTTail symmetry diff %v", diff)
	}
}

func TestLogitPanicsOutsideOpenInterval(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Logit(%v) did not panic", p)
				}
			}()
			Logit(p)
		}()
	}
	// Inverse property where defined. Near saturation (|x| ~ 20) the
	// 1-p term cancels catastrophically, so only ~7 digits survive.
	for _, x := range []float64{-20, -1, 0, 1, 20} {
		if diff := math.Abs(Logit(Sigmoid(x)) - x); diff > 1e-6*math.Max(1, math.Abs(x)) {
			t.Errorf("Logit∘Sigmoid(%v) off by %v", x, diff)
		}
	}
}
