package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestSigmoidBasics(t *testing.T) {
	if got := Sigmoid(0); got != 0.5 {
		t.Fatalf("Sigmoid(0) = %v, want 0.5", got)
	}
	if got := Sigmoid(100); got != 1 {
		t.Fatalf("Sigmoid(100) = %v, want 1", got)
	}
	if got := Sigmoid(-100); got >= 1e-40 {
		t.Fatalf("Sigmoid(-100) = %v, want ~0", got)
	}
	if got := Sigmoid(-1000); got != 0 || math.IsNaN(got) {
		t.Fatalf("Sigmoid(-1000) = %v, want exactly 0 without NaN", got)
	}
}

func TestSigmoidSymmetry(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		x = math.Mod(x, 50)
		return almostEq(Sigmoid(x)+Sigmoid(-x), 1, 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLogSigmoidMatchesLog(t *testing.T) {
	for _, x := range []float64{-30, -5, -1, 0, 1, 5, 30} {
		want := math.Log(Sigmoid(x))
		if got := LogSigmoid(x); !almostEq(got, want, 1e-9) {
			t.Errorf("LogSigmoid(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestLog1pExpExtremes(t *testing.T) {
	if got := Log1pExp(1000); got != 1000 {
		t.Fatalf("Log1pExp(1000) = %v, want 1000", got)
	}
	if got := Log1pExp(-1000); got != 0 {
		t.Fatalf("Log1pExp(-1000) = %v, want 0", got)
	}
	if got := Log1pExp(0); !almostEq(got, math.Ln2, 1e-12) {
		t.Fatalf("Log1pExp(0) = %v, want ln 2", got)
	}
}

func TestLogitInvertsSigmoid(t *testing.T) {
	for _, p := range []float64{0.01, 0.25, 0.5, 0.75, 0.99} {
		if got := Sigmoid(Logit(p)); !almostEq(got, p, 1e-12) {
			t.Errorf("Sigmoid(Logit(%v)) = %v", p, got)
		}
	}
}

func TestLogitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Logit(0) did not panic")
		}
	}()
	Logit(0)
}

func TestLogSumExp(t *testing.T) {
	if got := LogSumExp(nil); !math.IsInf(got, -1) {
		t.Fatalf("LogSumExp(nil) = %v, want -Inf", got)
	}
	xs := []float64{1, 2, 3}
	want := math.Log(math.Exp(1) + math.Exp(2) + math.Exp(3))
	if got := LogSumExp(xs); !almostEq(got, want, 1e-12) {
		t.Fatalf("LogSumExp = %v, want %v", got, want)
	}
	// Stability: huge values must not overflow.
	if got := LogSumExp([]float64{1000, 1000}); !almostEq(got, 1000+math.Ln2, 1e-12) {
		t.Fatalf("LogSumExp overflow: %v", got)
	}
	if got := LogSumExp([]float64{math.Inf(-1), math.Inf(-1)}); !math.IsInf(got, -1) {
		t.Fatalf("LogSumExp(-Inf,-Inf) = %v", got)
	}
}

func TestSoftmax(t *testing.T) {
	dst := make([]float64, 3)
	Softmax(dst, []float64{1, 2, 3})
	if !almostEq(Sum(dst), 1, 1e-12) {
		t.Fatalf("softmax does not sum to 1: %v", dst)
	}
	if !(dst[2] > dst[1] && dst[1] > dst[0]) {
		t.Fatalf("softmax not monotone: %v", dst)
	}
	// Ratio property: dst[i]/dst[j] = exp(x_i - x_j).
	if !almostEq(dst[2]/dst[1], math.E, 1e-9) {
		t.Fatalf("softmax ratio wrong: %v", dst[2]/dst[1])
	}
	// In-place aliasing.
	x := []float64{5, 5}
	Softmax(x, x)
	if !almostEq(x[0], 0.5, 1e-12) {
		t.Fatalf("in-place softmax: %v", x)
	}
}

func TestDigammaRecurrence(t *testing.T) {
	// psi(x+1) = psi(x) + 1/x.
	f := func(raw float64) bool {
		x := math.Abs(math.Mod(raw, 20)) + 0.1
		return almostEq(Digamma(x+1), Digamma(x)+1/x, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDigammaKnownValues(t *testing.T) {
	const gamma = 0.5772156649015329 // Euler–Mascheroni
	if got := Digamma(1); !almostEq(got, -gamma, 1e-10) {
		t.Fatalf("Digamma(1) = %v, want %v", got, -gamma)
	}
	if got := Digamma(0.5); !almostEq(got, -gamma-2*math.Ln2, 1e-10) {
		t.Fatalf("Digamma(0.5) = %v", got)
	}
	if got := Digamma(2); !almostEq(got, 1-gamma, 1e-10) {
		t.Fatalf("Digamma(2) = %v", got)
	}
}

func TestRegIncBetaKnownValues(t *testing.T) {
	// I_x(1,1) = x.
	for _, x := range []float64{0.1, 0.5, 0.9} {
		if got := RegIncBeta(1, 1, x); !almostEq(got, x, 1e-10) {
			t.Errorf("I_%v(1,1) = %v", x, got)
		}
	}
	// I_x(1,b) = 1-(1-x)^b.
	if got := RegIncBeta(1, 3, 0.3); !almostEq(got, 1-math.Pow(0.7, 3), 1e-10) {
		t.Errorf("I_0.3(1,3) = %v", got)
	}
	// Symmetry I_x(a,b) = 1 - I_{1-x}(b,a).
	f := func(ra, rb, rx float64) bool {
		a := math.Abs(math.Mod(ra, 5)) + 0.2
		b := math.Abs(math.Mod(rb, 5)) + 0.2
		x := math.Abs(math.Mod(rx, 1))
		return almostEq(RegIncBeta(a, b, x), 1-RegIncBeta(b, a, 1-x), 1e-8)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if got := RegIncBeta(2, 3, 0); got != 0 {
		t.Errorf("I_0 = %v", got)
	}
	if got := RegIncBeta(2, 3, 1); got != 1 {
		t.Errorf("I_1 = %v", got)
	}
}

func TestStudentTTailKnownValues(t *testing.T) {
	// df=1 is the Cauchy distribution: P(T > 1) = 1/4.
	if got := StudentTTail(1, 1); !almostEq(got, 0.25, 1e-9) {
		t.Fatalf("P(T_1 > 1) = %v, want 0.25", got)
	}
	if got := StudentTTail(0, 5); !almostEq(got, 0.5, 1e-12) {
		t.Fatalf("P(T_5 > 0) = %v, want 0.5", got)
	}
	// Symmetry.
	if got := StudentTTail(-1, 1); !almostEq(got, 0.75, 1e-9) {
		t.Fatalf("P(T_1 > -1) = %v, want 0.75", got)
	}
	// Large df approaches the normal tail.
	if got := StudentTTail(1.96, 1e6); !almostEq(got, 0.025, 1e-3) {
		t.Fatalf("P(T_inf > 1.96) = %v, want ~0.025", got)
	}
	// Monotone decreasing in t.
	prev := 1.0
	for tt := 0.0; tt < 5; tt += 0.5 {
		cur := StudentTTail(tt, 7)
		if cur > prev {
			t.Fatalf("tail not monotone at t=%v", tt)
		}
		prev = cur
	}
}

func TestPairedTTest(t *testing.T) {
	// Clearly better scores should give a small p-value.
	a := []float64{0.9, 0.91, 0.89, 0.92, 0.9}
	b := []float64{0.7, 0.72, 0.69, 0.71, 0.7}
	p, err := PairedTTestOneTailed(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if p > 0.001 {
		t.Fatalf("p = %v, want < 0.001", p)
	}
	// Reversed direction: p near 1.
	p, err = PairedTTestOneTailed(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.999 {
		t.Fatalf("reversed p = %v, want > 0.999", p)
	}
	// Degenerate inputs.
	if _, err := PairedTTestOneTailed([]float64{1}, []float64{2}); err == nil {
		t.Fatal("expected error for single sample")
	}
	if _, err := PairedTTestOneTailed([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("expected error for length mismatch")
	}
	// Zero variance, positive mean difference.
	p, err = PairedTTestOneTailed([]float64{2, 2}, []float64{1, 1})
	if err != nil || p != 0 {
		t.Fatalf("constant-diff p = %v err = %v", p, err)
	}
}

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); !almostEq(got, 5, 1e-12) {
		t.Fatalf("Mean = %v", got)
	}
	if got := Variance(xs); !almostEq(got, 32.0/7, 1e-12) {
		t.Fatalf("Variance = %v", got)
	}
	if got := StdDev(xs); !almostEq(got, math.Sqrt(32.0/7), 1e-12) {
		t.Fatalf("StdDev = %v", got)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Fatal("degenerate mean/variance wrong")
	}
}

func TestDotAndSum(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v", got)
	}
	if got := Sum([]float64{1, 2, 3}); got != 6 {
		t.Fatalf("Sum = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Dot length mismatch did not panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestNormalize(t *testing.T) {
	xs := []float64{1, 3}
	if !Normalize(xs) || !almostEq(xs[0], 0.25, 1e-12) {
		t.Fatalf("Normalize = %v", xs)
	}
	zero := []float64{0, 0}
	if Normalize(zero) {
		t.Fatal("Normalize of zeros returned true")
	}
	if zero[0] != 0.5 {
		t.Fatalf("zero fallback = %v", zero)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp wrong")
	}
}

func TestMaxIndexAndTopK(t *testing.T) {
	if MaxIndex(nil) != -1 {
		t.Fatal("MaxIndex(nil)")
	}
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	if got := MaxIndex(xs); got != 5 {
		t.Fatalf("MaxIndex = %v", got)
	}
	top := TopKIndices(xs, 3)
	want := []int{5, 7, 4}
	for i := range want {
		if top[i] != want[i] {
			t.Fatalf("TopKIndices = %v, want %v", top, want)
		}
	}
	if got := TopKIndices(xs, 100); len(got) != len(xs) {
		t.Fatalf("TopKIndices over-length = %v", got)
	}
	// Values must be in descending order (property).
	f := func(raw []float64) bool {
		for i := range raw {
			if math.IsNaN(raw[i]) {
				raw[i] = 0
			}
		}
		k := 3
		got := TopKIndices(raw, k)
		for i := 1; i < len(got); i++ {
			if raw[got[i-1]] < raw[got[i]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
