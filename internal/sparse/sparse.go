// Package sparse provides the linear-algebra substrate for the samplers:
// dense matrices and rank-3 tensors (for the community diffusion profile
// eta), sparse vectors, and the smoothed-multinomial decomposition that
// turns the paper's O(|C|) and O(|C|^2) bilinear forms (Eqs. 3–5) into
// O(nnz) operations. The reproduction bands flag "awkward numeric/sparse-
// matrix support for samplers" as the main Go friction point — this package
// is the answer.
package sparse

import (
	"fmt"
	"math"
)

// Dense is a row-major dense matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64
}

// NewDense allocates a zeroed Rows x Cols matrix.
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic("sparse: NewDense with negative dimension")
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// NewDenseView wraps an existing flat, row-major buffer as a Dense without
// copying. The matrix aliases data: mutations are visible both ways, and
// callers backing the view with read-only memory (a mapped snapshot
// section) must treat the matrix as immutable — writes through it fault.
func NewDenseView(rows, cols int, data []float64) *Dense {
	if rows < 0 || cols < 0 {
		panic("sparse: NewDenseView with negative dimension")
	}
	if len(data) != rows*cols {
		panic("sparse: NewDenseView buffer length does not match shape")
	}
	return &Dense{Rows: rows, Cols: cols, Data: data}
}

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Add increments element (i, j) by v.
func (m *Dense) Add(i, j int, v float64) { m.Data[i*m.Cols+j] += v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Fill sets every element to v.
func (m *Dense) Fill(v float64) {
	for i := range m.Data {
		m.Data[i] = v
	}
}

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Scale multiplies every element by s.
func (m *Dense) Scale(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// MulVec computes dst = M * x. dst must have length Rows, x length Cols.
func (m *Dense) MulVec(dst, x []float64) {
	if len(dst) != m.Rows || len(x) != m.Cols {
		panic("sparse: MulVec dimension mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		dst[i] = s
	}
}

// MulVecT computes dst = M^T * x. dst must have length Cols, x length Rows.
func (m *Dense) MulVecT(dst, x []float64) {
	if len(dst) != m.Cols || len(x) != m.Rows {
		panic("sparse: MulVecT dimension mismatch")
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Row(i)
		for j, v := range row {
			dst[j] += xi * v
		}
	}
}

// Bilinear returns x^T M y.
func (m *Dense) Bilinear(x, y []float64) float64 {
	if len(x) != m.Rows || len(y) != m.Cols {
		panic("sparse: Bilinear dimension mismatch")
	}
	var s float64
	for i := 0; i < m.Rows; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		row := m.Row(i)
		var t float64
		for j, v := range row {
			t += v * y[j]
		}
		s += xi * t
	}
	return s
}

// Sum returns the sum of all elements.
func (m *Dense) Sum() float64 {
	var s float64
	for _, v := range m.Data {
		s += v
	}
	return s
}

// NormalizeRows scales each row to sum to 1; rows summing to <= 0 become
// uniform.
func (m *Dense) NormalizeRows() {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for _, v := range row {
			s += v
		}
		if s <= 0 || math.IsNaN(s) {
			u := 1 / float64(m.Cols)
			for j := range row {
				row[j] = u
			}
			continue
		}
		inv := 1 / s
		for j := range row {
			row[j] *= inv
		}
	}
}

// Tensor3 is a dense rank-3 tensor indexed (i, j, k); the community
// diffusion profile eta is a Tensor3 with shape |C| x |C| x |Z|.
type Tensor3 struct {
	D1, D2, D3 int
	Data       []float64
}

// NewTensor3 allocates a zeroed d1 x d2 x d3 tensor.
func NewTensor3(d1, d2, d3 int) *Tensor3 {
	if d1 < 0 || d2 < 0 || d3 < 0 {
		panic("sparse: NewTensor3 with negative dimension")
	}
	return &Tensor3{D1: d1, D2: d2, D3: d3, Data: make([]float64, d1*d2*d3)}
}

// NewTensor3View wraps an existing flat buffer (index order (i, j, k),
// k fastest) as a Tensor3 without copying — the rank-3 analogue of
// NewDenseView, with the same aliasing and read-only caveats.
func NewTensor3View(d1, d2, d3 int, data []float64) *Tensor3 {
	if d1 < 0 || d2 < 0 || d3 < 0 {
		panic("sparse: NewTensor3View with negative dimension")
	}
	if len(data) != d1*d2*d3 {
		panic("sparse: NewTensor3View buffer length does not match shape")
	}
	return &Tensor3{D1: d1, D2: d2, D3: d3, Data: data}
}

// At returns element (i, j, k).
func (t *Tensor3) At(i, j, k int) float64 { return t.Data[(i*t.D2+j)*t.D3+k] }

// Set assigns element (i, j, k).
func (t *Tensor3) Set(i, j, k int, v float64) { t.Data[(i*t.D2+j)*t.D3+k] = v }

// Add increments element (i, j, k) by v.
func (t *Tensor3) Add(i, j, k int, v float64) { t.Data[(i*t.D2+j)*t.D3+k] += v }

// Fill sets every element to v.
func (t *Tensor3) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Clone returns a deep copy.
func (t *Tensor3) Clone() *Tensor3 {
	c := NewTensor3(t.D1, t.D2, t.D3)
	copy(c.Data, t.Data)
	return c
}

// SliceK returns the D1 x D2 matrix t[:, :, k] as a fresh Dense. For the
// CPD model this is the per-topic community-to-community diffusion matrix
// M_z = eta[:, :, z].
func (t *Tensor3) SliceK(k int) *Dense {
	m := NewDense(t.D1, t.D2)
	t.SliceKInto(k, m)
	return m
}

// SliceKInto gathers t[:, :, k] into dst (shape D1 x D2), reusing dst's
// storage. The slice layers that keep every per-topic matrix in one flat
// buffer (the model and sampler caches) gather through this instead of
// allocating a fresh Dense per topic.
func (t *Tensor3) SliceKInto(k int, dst *Dense) {
	if dst.Rows != t.D1 || dst.Cols != t.D2 {
		panic("sparse: SliceKInto shape mismatch")
	}
	for i := 0; i < t.D1; i++ {
		row := dst.Row(i)
		base := i * t.D2 * t.D3
		for j := range row {
			row[j] = t.Data[base+j*t.D3+k]
		}
	}
}

// SumK returns the D1 x D2 matrix of sums over the third index: the
// topic-aggregated diffusion strengths of Fig. 7(a).
func (t *Tensor3) SumK() *Dense {
	m := NewDense(t.D1, t.D2)
	for i := 0; i < t.D1; i++ {
		for j := 0; j < t.D2; j++ {
			var s float64
			base := (i*t.D2 + j) * t.D3
			for k := 0; k < t.D3; k++ {
				s += t.Data[base+k]
			}
			m.Set(i, j, s)
		}
	}
	return m
}

// Vector is a sparse vector with sorted, unique indices.
type Vector struct {
	Dim     int
	Indices []int32
	Values  []float64
}

// NewVectorFromDense builds a sparse vector from a dense slice, dropping
// zeros.
func NewVectorFromDense(x []float64) *Vector {
	v := &Vector{Dim: len(x)}
	for i, val := range x {
		if val != 0 {
			v.Indices = append(v.Indices, int32(i))
			v.Values = append(v.Values, val)
		}
	}
	return v
}

// NNZ returns the number of stored entries.
func (v *Vector) NNZ() int { return len(v.Indices) }

// Dense expands v to a dense slice.
func (v *Vector) Dense() []float64 {
	x := make([]float64, v.Dim)
	for k, i := range v.Indices {
		x[i] = v.Values[k]
	}
	return x
}

// Dot returns the sparse-sparse dot product (merge join over sorted
// indices).
func (v *Vector) Dot(w *Vector) float64 {
	if v.Dim != w.Dim {
		panic("sparse: Vector.Dot dimension mismatch")
	}
	var s float64
	i, j := 0, 0
	for i < len(v.Indices) && j < len(w.Indices) {
		switch {
		case v.Indices[i] < w.Indices[j]:
			i++
		case v.Indices[i] > w.Indices[j]:
			j++
		default:
			s += v.Values[i] * w.Values[j]
			i++
			j++
		}
	}
	return s
}

// DotDense returns the dot product with a dense vector.
func (v *Vector) DotDense(x []float64) float64 {
	if v.Dim != len(x) {
		panic("sparse: Vector.DotDense dimension mismatch")
	}
	var s float64
	for k, i := range v.Indices {
		s += v.Values[k] * x[i]
	}
	return s
}

// Sum returns the sum of stored values.
func (v *Vector) Sum() float64 {
	var s float64
	for _, x := range v.Values {
		s += x
	}
	return s
}

// String implements fmt.Stringer for debugging.
func (v *Vector) String() string {
	return fmt.Sprintf("sparse.Vector{dim=%d nnz=%d}", v.Dim, v.NNZ())
}
