package sparse

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// Edge-case and property-style tests for the linear-algebra substrate:
// empty shapes, single-element smoothed distributions, degenerate rows —
// the inputs the scenario harness's adversarial presets push into the
// samplers.

func TestEmptyShapes(t *testing.T) {
	// A 0x0 matrix supports every whole-matrix operation.
	m := NewDense(0, 0)
	m.Fill(1)
	m.Scale(2)
	m.NormalizeRows()
	if s := m.Sum(); s != 0 {
		t.Fatalf("empty matrix sums to %v", s)
	}
	if c := m.Clone(); c.Rows != 0 || c.Cols != 0 || len(c.Data) != 0 {
		t.Fatalf("empty clone %+v", c)
	}
	m.MulVec(nil, nil)
	m.MulVecT(nil, nil)
	if v := m.Bilinear(nil, nil); v != 0 {
		t.Fatalf("empty bilinear = %v", v)
	}

	// Rows x 0 and 0 x Cols matrices behave too.
	wide := NewDense(0, 5)
	wide.NormalizeRows()
	tall := NewDense(5, 0)
	tall.NormalizeRows()
	if tall.Sum() != 0 {
		t.Fatal("5x0 matrix has mass")
	}

	// Empty tensors and their slices.
	tn := NewTensor3(0, 0, 0)
	tn.Fill(3)
	if c := tn.Clone(); len(c.Data) != 0 {
		t.Fatalf("empty tensor clone %+v", c)
	}

	// Empty sparse vectors.
	v := NewVectorFromDense(nil)
	if v.NNZ() != 0 || v.Sum() != 0 {
		t.Fatalf("empty vector %+v", v)
	}
	w := NewVectorFromDense([]float64{0, 0, 0})
	if w.NNZ() != 0 {
		t.Fatalf("all-zero vector stores %d entries", w.NNZ())
	}
	if d := w.Dot(&Vector{Dim: 3}); d != 0 {
		t.Fatalf("empty dot = %v", d)
	}
	if d := w.DotDense([]float64{1, 2, 3}); d != 0 {
		t.Fatalf("empty DotDense = %v", d)
	}
}

func TestNormalizeRowsDegenerate(t *testing.T) {
	m := NewDense(4, 3)
	m.Set(0, 1, 2)          // normal row
	m.Set(1, 0, 0)          // all-zero row
	m.Set(2, 0, math.NaN()) // NaN row
	m.Set(3, 0, -1)         // negative-sum row
	m.Set(3, 1, 0.5)
	m.NormalizeRows()
	if got := m.At(0, 1); got != 1 {
		t.Fatalf("normal row not normalized: %v", got)
	}
	for _, r := range []int{1, 2, 3} {
		row := m.Row(r)
		for j, v := range row {
			if math.Abs(v-1.0/3) > 1e-15 {
				t.Fatalf("degenerate row %d[%d] = %v, want uniform 1/3", r, j, v)
			}
		}
	}
}

func TestSmoothedVecSingleElement(t *testing.T) {
	// Dim-1 smoothed distributions: the single-community degenerate case
	// (a giant-community model collapsed to |C| = 1).
	x := &SmoothedVec{Dim: 1, Base: 0.25, Idx: []int32{0}, Val: []float64{0.75}}
	y := &SmoothedVec{Dim: 1, Base: 1}
	if got, want := x.Dot(y), 1.0; math.Abs(got-want) > 1e-15 {
		t.Fatalf("dim-1 dot = %v, want %v", got, want)
	}
	if d := x.Dense(); len(d) != 1 || math.Abs(d[0]-1) > 1e-15 {
		t.Fatalf("dim-1 dense = %v", d)
	}
	// Base-only vectors (no residual): dot reduces to Bx·By·Dim.
	a := &SmoothedVec{Dim: 7, Base: 0.5}
	b := &SmoothedVec{Dim: 7, Base: 0.25}
	if got, want := a.Dot(b), 0.5*0.25*7; math.Abs(got-want) > 1e-15 {
		t.Fatalf("base-only dot = %v, want %v", got, want)
	}
}

// TestSmoothedDotEdgeSparsity is the property test: for random smoothed
// vectors of varying sparsity (including empty residuals and full
// residuals), the O(nnz) dot must equal the dense reference.
func TestSmoothedDotEdgeSparsity(t *testing.T) {
	r := rng.New(8)
	dense := func(x *SmoothedVec) []float64 { return x.Dense() }
	dotRef := func(a, b []float64) float64 {
		var s float64
		for i := range a {
			s += a[i] * b[i]
		}
		return s
	}
	randomVec := func(dim, nnz int) *SmoothedVec {
		v := &SmoothedVec{Dim: dim, Base: r.Float64() * 0.1}
		seen := map[int32]bool{}
		for len(v.Idx) < nnz {
			i := int32(r.Intn(dim))
			if seen[i] {
				continue
			}
			seen[i] = true
			v.Idx = append(v.Idx, i)
		}
		// Indices must be sorted and unique.
		for i := 1; i < len(v.Idx); i++ {
			for j := i; j > 0 && v.Idx[j] < v.Idx[j-1]; j-- {
				v.Idx[j], v.Idx[j-1] = v.Idx[j-1], v.Idx[j]
			}
		}
		for range v.Idx {
			v.Val = append(v.Val, r.Float64())
		}
		return v
	}
	for trial := 0; trial < 50; trial++ {
		dim := 1 + r.Intn(12)
		x := randomVec(dim, r.Intn(dim+1))
		y := randomVec(dim, r.Intn(dim+1))
		got := x.Dot(y)
		want := dotRef(dense(x), dense(y))
		if math.Abs(got-want) > 1e-12*(math.Abs(want)+1) {
			t.Fatalf("trial %d (dim %d): smoothed dot %v != dense %v", trial, dim, got, want)
		}
	}
}

// TestBilinearAggEdgeDims extends the property to the bilinear form
// used by the diffusion likelihood, including dim-1 and empty-residual
// corners.
func TestBilinearAggEdgeDims(t *testing.T) {
	r := rng.New(9)
	for trial := 0; trial < 30; trial++ {
		dim := 1 + r.Intn(8)
		m := NewDense(dim, dim)
		for i := range m.Data {
			m.Data[i] = r.Float64()
		}
		w := make([]float64, dim)
		for i := range w {
			w[i] = r.Float64()
		}
		mkVec := func(nnz int) *SmoothedVec {
			v := &SmoothedVec{Dim: dim, Base: r.Float64() * 0.2}
			for i := 0; i < nnz && i < dim; i++ {
				v.Idx = append(v.Idx, int32(i))
				v.Val = append(v.Val, r.Float64())
			}
			return v
		}
		x, y := mkVec(r.Intn(dim+1)), mkVec(r.Intn(dim+1))
		agg := NewBilinearAgg(m, w)
		got := agg.Eval(m, w, x, y)
		want := EvalDense(m, w, x.Dense(), y.Dense())
		if math.Abs(got-want) > 1e-12*(math.Abs(want)+1) {
			t.Fatalf("trial %d (dim %d): agg eval %v != dense %v", trial, dim, got, want)
		}
	}
}

func TestVectorDotDisjointSupports(t *testing.T) {
	a := &Vector{Dim: 6, Indices: []int32{0, 2, 4}, Values: []float64{1, 2, 3}}
	b := &Vector{Dim: 6, Indices: []int32{1, 3, 5}, Values: []float64{4, 5, 6}}
	if d := a.Dot(b); d != 0 {
		t.Fatalf("disjoint supports dot = %v", d)
	}
	if d := a.Dot(a); d != 1+4+9 {
		t.Fatalf("self dot = %v", d)
	}
}
