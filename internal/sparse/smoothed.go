package sparse

// SmoothedVec represents a vector of the form
//
//	x = Base * 1 + residual,
//
// where the residual is sparse (sorted unique indices). Dirichlet-smoothed
// empirical multinomials have exactly this shape: the CPD sampler's
// pi-hat_u = (n_u^c + rho) / (n_u + |C| rho) decomposes into the constant
// rho/(n_u+|C|rho) plus a residual supported on the few communities the
// user's documents are currently assigned to. All the link probabilities in
// Eqs. 3–5 are dot products and bilinear forms of such vectors, so this
// decomposition is what makes each Gibbs step O(nnz) rather than O(|C|) or
// O(|C|^2).
type SmoothedVec struct {
	Dim  int
	Base float64
	Idx  []int32
	Val  []float64
}

// Dense expands the smoothed vector to a dense slice (for tests and
// reporting; the samplers never call this).
func (x *SmoothedVec) Dense() []float64 {
	d := make([]float64, x.Dim)
	for i := range d {
		d[i] = x.Base
	}
	for k, i := range x.Idx {
		d[i] += x.Val[k]
	}
	return d
}

// ResidualSum returns the sum of the sparse residual values.
func (x *SmoothedVec) ResidualSum() float64 {
	var s float64
	for _, v := range x.Val {
		s += v
	}
	return s
}

// Dot returns x^T y for two smoothed vectors of the same dimension:
//
//	x^T y = Bx*By*Dim + Bx*sum(py) + By*sum(px) + px^T py,
//
// O(nnz(x)+nnz(y)) instead of O(Dim).
func (x *SmoothedVec) Dot(y *SmoothedVec) float64 {
	if x.Dim != y.Dim {
		panic("sparse: SmoothedVec.Dot dimension mismatch")
	}
	s := x.Base * y.Base * float64(x.Dim)
	s += x.Base * y.ResidualSum()
	s += y.Base * x.ResidualSum()
	i, j := 0, 0
	for i < len(x.Idx) && j < len(y.Idx) {
		switch {
		case x.Idx[i] < y.Idx[j]:
			i++
		case x.Idx[i] > y.Idx[j]:
			j++
		default:
			s += x.Val[i] * y.Val[j]
			i++
			j++
		}
	}
	return s
}

// BilinearAgg holds the per-topic aggregates needed to evaluate the CPD
// diffusion bilinear form
//
//	s = (x ∘ w)^T M (y ∘ w)
//
// in O(nnz(x) * nnz(y)) for smoothed x, y: T = w^T M w, G = M (w ∘ w)
// restricted appropriately, H = M^T (w ∘ w). Precomputing costs O(Dim^2)
// once per Gibbs sweep per topic (Sect. 4.3's stale-cache trade-off).
type BilinearAgg struct {
	// T = w^T M w.
	T float64
	// G[c] = sum_c' M[c, c'] w[c'] — i.e. (M w)[c].
	G []float64
	// H[c'] = sum_c w[c] M[c, c'] — i.e. (M^T w)[c'].
	H []float64
}

// NewBilinearAgg precomputes the aggregates for matrix M and weight vector
// w (len(w) must equal both dimensions of M, which must be square).
func NewBilinearAgg(m *Dense, w []float64) *BilinearAgg {
	if m.Rows != m.Cols || len(w) != m.Rows {
		panic("sparse: NewBilinearAgg requires square M with matching w")
	}
	n := m.Rows
	agg := &BilinearAgg{G: make([]float64, n), H: make([]float64, n)}
	for i := 0; i < n; i++ {
		row := m.Row(i)
		var g float64
		for j, v := range row {
			g += v * w[j]
			agg.H[j] += w[i] * v
		}
		agg.G[i] = g
		agg.T += w[i] * g
	}
	return agg
}

// Eval returns (x ∘ w)^T M (y ∘ w) using the precomputed aggregates. The
// caller must pass the same M and w used to build the aggregates (only the
// sparse parts of M are touched — through direct indexing — so the cost is
// O(nnz(x)*nnz(y) + nnz(x) + nnz(y))).
func (a *BilinearAgg) Eval(m *Dense, w []float64, x, y *SmoothedVec) float64 {
	// (x∘w) = Bx*w + (px∘w); expand the bilinear form into four terms.
	s := x.Base * y.Base * a.T
	for k, c := range y.Idx {
		s += x.Base * a.H[c] * y.Val[k] * w[c]
	}
	for k, c := range x.Idx {
		s += y.Base * a.G[c] * x.Val[k] * w[c]
	}
	for kx, cx := range x.Idx {
		xv := x.Val[kx] * w[cx]
		if xv == 0 {
			continue
		}
		row := m.Row(int(cx))
		var t float64
		for ky, cy := range y.Idx {
			t += row[cy] * y.Val[ky] * w[cy]
		}
		s += xv * t
	}
	return s
}

// EvalDense is the O(Dim^2) reference evaluation of the same bilinear form
// on fully dense vectors; tests verify Eval against it, and the
// BenchmarkBilinear* pair quantifies the ablation.
func EvalDense(m *Dense, w, x, y []float64) float64 {
	n := m.Rows
	var s float64
	for i := 0; i < n; i++ {
		xi := x[i] * w[i]
		if xi == 0 {
			continue
		}
		row := m.Row(i)
		var t float64
		for j := 0; j < n; j++ {
			t += row[j] * y[j] * w[j]
		}
		s += xi * t
	}
	return s
}
