package sparse

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestDenseBasics(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(0, 1, 5)
	m.Add(0, 1, 2)
	if m.At(0, 1) != 7 {
		t.Fatalf("At = %v", m.At(0, 1))
	}
	if got := m.Row(0)[1]; got != 7 {
		t.Fatalf("Row alias = %v", got)
	}
	if m.Sum() != 7 {
		t.Fatalf("Sum = %v", m.Sum())
	}
	c := m.Clone()
	c.Set(0, 1, 0)
	if m.At(0, 1) != 7 {
		t.Fatal("Clone aliases original")
	}
	m.Fill(2)
	if m.Sum() != 12 {
		t.Fatalf("Fill sum = %v", m.Sum())
	}
	m.Scale(0.5)
	if m.Sum() != 6 {
		t.Fatalf("Scale sum = %v", m.Sum())
	}
}

func TestDensePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative dims did not panic")
		}
	}()
	NewDense(-1, 2)
}

func TestMulVec(t *testing.T) {
	m := NewDense(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	dst := make([]float64, 2)
	m.MulVec(dst, []float64{1, 1, 1})
	if dst[0] != 6 || dst[1] != 15 {
		t.Fatalf("MulVec = %v", dst)
	}
	dstT := make([]float64, 3)
	m.MulVecT(dstT, []float64{1, 2})
	if dstT[0] != 9 || dstT[1] != 12 || dstT[2] != 15 {
		t.Fatalf("MulVecT = %v", dstT)
	}
}

func TestBilinear(t *testing.T) {
	m := NewDense(2, 2)
	copy(m.Data, []float64{1, 2, 3, 4})
	// [1 2] * M * [3 4]^T = [1 2]·[(3+8),(9+16)] = 11 + 2*25... compute:
	// M*[3,4] = [3+8, 9+16] = [11, 25]; x·that = 1*11 + 2*25 = 61.
	if got := m.Bilinear([]float64{1, 2}, []float64{3, 4}); got != 61 {
		t.Fatalf("Bilinear = %v", got)
	}
}

func TestNormalizeRows(t *testing.T) {
	m := NewDense(2, 2)
	copy(m.Data, []float64{1, 3, 0, 0})
	m.NormalizeRows()
	if m.At(0, 0) != 0.25 || m.At(0, 1) != 0.75 {
		t.Fatalf("row 0 = %v", m.Row(0))
	}
	if m.At(1, 0) != 0.5 || m.At(1, 1) != 0.5 {
		t.Fatalf("zero row fallback = %v", m.Row(1))
	}
}

func TestTensor3(t *testing.T) {
	tt := NewTensor3(2, 3, 4)
	tt.Set(1, 2, 3, 5)
	tt.Add(1, 2, 3, 1)
	if tt.At(1, 2, 3) != 6 {
		t.Fatalf("At = %v", tt.At(1, 2, 3))
	}
	s := tt.SliceK(3)
	if s.At(1, 2) != 6 || s.At(0, 0) != 0 {
		t.Fatalf("SliceK = %v", s.Data)
	}
	// SliceK is a copy.
	s.Set(1, 2, 0)
	if tt.At(1, 2, 3) != 6 {
		t.Fatal("SliceK aliases tensor")
	}
	tt.Set(1, 2, 0, 4)
	sum := tt.SumK()
	if sum.At(1, 2) != 10 {
		t.Fatalf("SumK = %v", sum.At(1, 2))
	}
	c := tt.Clone()
	c.Set(0, 0, 0, 9)
	if tt.At(0, 0, 0) != 0 {
		t.Fatal("Clone aliases tensor")
	}
}

func TestVectorDotMatchesDense(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		dim := 1 + r.Intn(40)
		a := make([]float64, dim)
		b := make([]float64, dim)
		for i := range a {
			if r.Float64() < 0.3 {
				a[i] = r.Norm()
			}
			if r.Float64() < 0.3 {
				b[i] = r.Norm()
			}
		}
		va := NewVectorFromDense(a)
		vb := NewVectorFromDense(b)
		var want float64
		for i := range a {
			want += a[i] * b[i]
		}
		got := va.Dot(vb)
		gotD := va.DotDense(b)
		return math.Abs(got-want) < 1e-9 && math.Abs(gotD-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestVectorRoundTrip(t *testing.T) {
	x := []float64{0, 1.5, 0, -2, 0}
	v := NewVectorFromDense(x)
	if v.NNZ() != 2 {
		t.Fatalf("NNZ = %d", v.NNZ())
	}
	d := v.Dense()
	for i := range x {
		if d[i] != x[i] {
			t.Fatalf("Dense round trip = %v", d)
		}
	}
	if v.Sum() != -0.5 {
		t.Fatalf("Sum = %v", v.Sum())
	}
	if v.String() == "" {
		t.Fatal("empty String()")
	}
}

// randomSmoothed builds a random smoothed vector and its dense expansion.
func randomSmoothed(r *rng.RNG, dim int) (*SmoothedVec, []float64) {
	sv := &SmoothedVec{Dim: dim, Base: r.Float64() * 0.1}
	for i := 0; i < dim; i++ {
		if r.Float64() < 0.2 {
			sv.Idx = append(sv.Idx, int32(i))
			sv.Val = append(sv.Val, r.Float64())
		}
	}
	return sv, sv.Dense()
}

func TestSmoothedDotMatchesDense(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		dim := 2 + r.Intn(30)
		x, xd := randomSmoothed(r, dim)
		y, yd := randomSmoothed(r, dim)
		var want float64
		for i := range xd {
			want += xd[i] * yd[i]
		}
		return math.Abs(x.Dot(y)-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBilinearAggMatchesDense(t *testing.T) {
	// The central scalability property: the O(nnz^2) smoothed evaluation
	// must equal the O(C^2) dense evaluation exactly.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		dim := 2 + r.Intn(20)
		m := NewDense(dim, dim)
		for i := range m.Data {
			m.Data[i] = r.Norm()
		}
		w := make([]float64, dim)
		for i := range w {
			w[i] = r.Float64()
		}
		agg := NewBilinearAgg(m, w)
		x, xd := randomSmoothed(r, dim)
		y, yd := randomSmoothed(r, dim)
		want := EvalDense(m, w, xd, yd)
		got := agg.Eval(m, w, x, y)
		return math.Abs(got-want) < 1e-8*(1+math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBilinearAggComponents(t *testing.T) {
	m := NewDense(2, 2)
	copy(m.Data, []float64{1, 2, 3, 4})
	w := []float64{1, 0.5}
	agg := NewBilinearAgg(m, w)
	// G = M w = [1+1, 3+2] = [2, 5]; H = M^T w = [1+1.5, 2+2] = [2.5, 4];
	// T = w^T M w = 1*2 + 0.5*5 = 4.5.
	if agg.G[0] != 2 || agg.G[1] != 5 {
		t.Fatalf("G = %v", agg.G)
	}
	if agg.H[0] != 2.5 || agg.H[1] != 4 {
		t.Fatalf("H = %v", agg.H)
	}
	if agg.T != 4.5 {
		t.Fatalf("T = %v", agg.T)
	}
}

func TestBilinearAggPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-square did not panic")
		}
	}()
	NewBilinearAgg(NewDense(2, 3), []float64{1, 2})
}

func TestSmoothedResidualSumAndDense(t *testing.T) {
	sv := &SmoothedVec{Dim: 4, Base: 0.1, Idx: []int32{1, 3}, Val: []float64{0.5, 0.2}}
	if got := sv.ResidualSum(); math.Abs(got-0.7) > 1e-12 {
		t.Fatalf("ResidualSum = %v", got)
	}
	d := sv.Dense()
	want := []float64{0.1, 0.6, 0.1, 0.3}
	for i := range want {
		if math.Abs(d[i]-want[i]) > 1e-12 {
			t.Fatalf("Dense = %v", d)
		}
	}
}

func BenchmarkBilinearSparse(b *testing.B) {
	r := rng.New(1)
	const dim = 100
	m := NewDense(dim, dim)
	for i := range m.Data {
		m.Data[i] = r.Float64()
	}
	w := make([]float64, dim)
	for i := range w {
		w[i] = r.Float64()
	}
	agg := NewBilinearAgg(m, w)
	x, _ := randomSmoothedNNZ(r, dim, 5)
	y, _ := randomSmoothedNNZ(r, dim, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg.Eval(m, w, x, y)
	}
}

func BenchmarkBilinearDense(b *testing.B) {
	r := rng.New(1)
	const dim = 100
	m := NewDense(dim, dim)
	for i := range m.Data {
		m.Data[i] = r.Float64()
	}
	w := make([]float64, dim)
	for i := range w {
		w[i] = r.Float64()
	}
	x, xd := randomSmoothedNNZ(r, dim, 5)
	_, yd := randomSmoothedNNZ(r, dim, 5)
	_ = x
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EvalDense(m, w, xd, yd)
	}
}

func randomSmoothedNNZ(r *rng.RNG, dim, nnz int) (*SmoothedVec, []float64) {
	sv := &SmoothedVec{Dim: dim, Base: 0.01}
	used := map[int32]bool{}
	for len(sv.Idx) < nnz {
		i := int32(r.Intn(dim))
		if used[i] {
			continue
		}
		used[i] = true
		sv.Idx = append(sv.Idx, i)
		sv.Val = append(sv.Val, r.Float64())
	}
	// Indices must be sorted.
	for i := 1; i < len(sv.Idx); i++ {
		for j := i; j > 0 && sv.Idx[j] < sv.Idx[j-1]; j-- {
			sv.Idx[j], sv.Idx[j-1] = sv.Idx[j-1], sv.Idx[j]
			sv.Val[j], sv.Val[j-1] = sv.Val[j-1], sv.Val[j]
		}
	}
	return sv, sv.Dense()
}
