// Package knapsack solves the 0-1 knapsack instances the parallel E-step
// uses to balance Gibbs workload across threads (Sect. 4.3, Eq. 17): given
// per-segment workload estimates o_i, each thread greedily takes the subset
// of remaining segments whose total workload is as close to O/M as possible
// without exceeding it.
package knapsack

// Solve returns the indices of a subset of weights whose sum is maximal
// without exceeding capacity (the classic subset-sum form of 0-1 knapsack,
// value == weight). Weights must be non-negative. The solver scales the
// weights to a fixed integer resolution and runs exact DP on the scaled
// problem, so the answer is optimal up to the scaling granularity.
func Solve(weights []float64, capacity float64) []int {
	if capacity <= 0 || len(weights) == 0 {
		return nil
	}
	// Round-to-nearest scaling loses up to 0.5 units per item, so the
	// reconstructed optimum can fall short of the true one by about
	// n * capacity / resolution. 1<<16 keeps that error under 0.1% of
	// capacity for any realistic segment count while the DP stays O(n)
	// rows over a 64k-entry table.
	const resolution = 1 << 16
	var maxW float64
	for _, w := range weights {
		if w < 0 {
			panic("knapsack: negative weight")
		}
		if w > maxW {
			maxW = w
		}
	}
	if maxW == 0 {
		// All weights zero: everything fits.
		all := make([]int, len(weights))
		for i := range all {
			all[i] = i
		}
		return all
	}
	scale := float64(resolution) / capacity
	capInt := resolution
	wInt := make([]int, len(weights))
	for i, w := range weights {
		wi := int(w*scale + 0.5)
		wInt[i] = wi
	}
	// DP over achievable sums with predecessor tracking.
	// best[s] = true if sum s achievable; from[s] = item index used to
	// reach s first (with prev sum s - wInt[item]).
	reachable := make([]bool, capInt+1)
	from := make([]int, capInt+1)
	for i := range from {
		from[i] = -1
	}
	reachable[0] = true
	for i, wi := range wInt {
		if wi > capInt {
			continue
		}
		if wi == 0 {
			continue // handled after DP: zero-weight items always fit
		}
		for s := capInt; s >= wi; s-- {
			if !reachable[s] && reachable[s-wi] {
				reachable[s] = true
				from[s] = i
			}
		}
	}
	best := 0
	for s := capInt; s >= 0; s-- {
		if reachable[s] {
			best = s
			break
		}
	}
	var picked []int
	used := make([]bool, len(weights))
	for s := best; s > 0 && from[s] >= 0; {
		i := from[s]
		picked = append(picked, i)
		used[i] = true
		s -= wInt[i]
	}
	// Zero-scaled-weight items ride along for free.
	for i, wi := range wInt {
		if wi == 0 && !used[i] {
			picked = append(picked, i)
		}
	}
	return picked
}

// Pack distributes n items with the given workloads onto m bins by solving
// one knapsack per bin against the ideal per-bin load total/m (Eq. 17),
// assigning leftovers — which exist because the per-bin capacity is a
// target, not a bound — to the currently lightest bin. It returns the item
// indices per bin.
func Pack(workloads []float64, m int) [][]int {
	if m <= 0 {
		panic("knapsack: Pack with non-positive bin count")
	}
	bins := make([][]int, m)
	if len(workloads) == 0 {
		return bins
	}
	var total float64
	for _, w := range workloads {
		total += w
	}
	target := total / float64(m)
	remainingIdx := make([]int, len(workloads))
	for i := range remainingIdx {
		remainingIdx[i] = i
	}
	loads := make([]float64, m)
	for b := 0; b < m && len(remainingIdx) > 0; b++ {
		w := make([]float64, len(remainingIdx))
		for i, idx := range remainingIdx {
			w[i] = workloads[idx]
		}
		picked := Solve(w, target)
		if len(picked) == 0 {
			break
		}
		pickedSet := make(map[int]bool, len(picked))
		for _, i := range picked {
			idx := remainingIdx[i]
			bins[b] = append(bins[b], idx)
			loads[b] += workloads[idx]
			pickedSet[i] = true
		}
		next := remainingIdx[:0]
		for i, idx := range remainingIdx {
			if !pickedSet[i] {
				next = append(next, idx)
			}
		}
		remainingIdx = next
	}
	// Leftovers: least-loaded bin first.
	for _, idx := range remainingIdx {
		lightest := 0
		for b := 1; b < m; b++ {
			if loads[b] < loads[lightest] {
				lightest = b
			}
		}
		bins[lightest] = append(bins[lightest], idx)
		loads[lightest] += workloads[idx]
	}
	return bins
}

// RoundRobin is the naive baseline allocator used by the Fig. 11 workload-
// balancing ablation: item i goes to bin i mod m regardless of weight.
func RoundRobin(n, m int) [][]int {
	bins := make([][]int, m)
	for i := 0; i < n; i++ {
		bins[i%m] = append(bins[i%m], i)
	}
	return bins
}

// Loads returns the total workload per bin for an assignment.
func Loads(workloads []float64, bins [][]int) []float64 {
	loads := make([]float64, len(bins))
	for b, items := range bins {
		for _, i := range items {
			loads[b] += workloads[i]
		}
	}
	return loads
}
