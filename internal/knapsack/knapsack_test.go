package knapsack

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// bruteBest returns the maximal subset sum <= capacity by exhaustive
// search (n <= 16).
func bruteBest(weights []float64, capacity float64) float64 {
	n := len(weights)
	best := 0.0
	for mask := 0; mask < 1<<n; mask++ {
		var s float64
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				s += weights[i]
			}
		}
		if s <= capacity && s > best {
			best = s
		}
	}
	return best
}

func TestSolveMatchesBruteForce(t *testing.T) {
	// Deterministic seed sweep (testing/quick draws time-based seeds, which
	// made tier-1 flaky) plus the regression seed on which the old
	// resolution-4096 scaling exceeded its own error budget: twelve items'
	// round-to-nearest losses accumulated past capacity/1000.
	seeds := []uint64{0xfa7ba8de563942a0}
	for s := uint64(0); s < 200; s++ {
		seeds = append(seeds, s*0x9E3779B97F4A7C15+1)
	}
	for _, seed := range seeds {
		r := rng.New(seed)
		n := 1 + r.Intn(12)
		weights := make([]float64, n)
		var total float64
		for i := range weights {
			weights[i] = r.Float64() * 10
			total += weights[i]
		}
		capacity := total * (0.2 + 0.6*r.Float64())
		picked := Solve(weights, capacity)
		var got float64
		seen := map[int]bool{}
		for _, i := range picked {
			if seen[i] {
				t.Fatalf("seed %#x: duplicate pick %d in %v", seed, i, picked)
			}
			seen[i] = true
			got += weights[i]
		}
		if got > capacity*1.001 {
			t.Fatalf("seed %#x: capacity violated beyond scaling slack: %v > %v", seed, got, capacity)
		}
		want := bruteBest(weights, capacity)
		// The DP is exact up to the scaling resolution.
		if got < want-capacity/1000-1e-9 {
			t.Fatalf("seed %#x: suboptimal beyond resolution: got %v, want %v (capacity %v)", seed, got, want, capacity)
		}
	}
}

func TestSolveEdgeCases(t *testing.T) {
	if got := Solve(nil, 10); got != nil {
		t.Fatalf("empty weights: %v", got)
	}
	if got := Solve([]float64{1, 2}, 0); got != nil {
		t.Fatalf("zero capacity: %v", got)
	}
	// All-zero weights fit everywhere.
	if got := Solve([]float64{0, 0, 0}, 5); len(got) != 3 {
		t.Fatalf("zero weights: %v", got)
	}
	// Oversized item skipped.
	picked := Solve([]float64{100, 1}, 2)
	if len(picked) != 1 || picked[0] != 1 {
		t.Fatalf("oversized item: %v", picked)
	}
}

func TestSolvePanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative weight accepted")
		}
	}()
	Solve([]float64{-1}, 5)
}

func TestPackCoversAllItemsOnce(t *testing.T) {
	for seed := uint64(0); seed < 200; seed++ {
		r := rng.New(seed*0x9E3779B97F4A7C15 + 3)
		n := r.Intn(30)
		m := 1 + r.Intn(5)
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = r.Float64() * 5
		}
		bins := Pack(weights, m)
		if len(bins) != m {
			t.Fatalf("seed %d: %d bins, want %d", seed, len(bins), m)
		}
		seen := make([]bool, n)
		for _, bin := range bins {
			for _, i := range bin {
				if seen[i] {
					t.Fatalf("seed %d: item %d packed twice", seed, i)
				}
				seen[i] = true
			}
		}
		for i, s := range seen {
			if !s {
				t.Fatalf("seed %d: item %d dropped", seed, i)
			}
		}
	}
}

func TestPackBeatsRoundRobinOnSkewedLoads(t *testing.T) {
	// A heavy-tailed workload: knapsack packing must balance better than
	// round-robin, measured by max/mean load.
	r := rng.New(7)
	n, m := 40, 4
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = math.Exp(2 * r.Norm())
	}
	imbalance := func(bins [][]int) float64 {
		loads := Loads(weights, bins)
		var max, sum float64
		for _, l := range loads {
			sum += l
			if l > max {
				max = l
			}
		}
		return max / (sum / float64(len(loads)))
	}
	kn := imbalance(Pack(weights, m))
	rr := imbalance(RoundRobin(n, m))
	if kn > rr*1.05 {
		t.Fatalf("knapsack imbalance %v worse than round-robin %v", kn, rr)
	}
	if kn > 1.6 {
		t.Fatalf("knapsack imbalance %v too high", kn)
	}
}

func TestPackPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pack with 0 bins accepted")
		}
	}()
	Pack([]float64{1}, 0)
}

func TestLoads(t *testing.T) {
	w := []float64{1, 2, 3}
	loads := Loads(w, [][]int{{0, 2}, {1}})
	if loads[0] != 4 || loads[1] != 2 {
		t.Fatalf("Loads = %v", loads)
	}
}

func BenchmarkSolve(b *testing.B) {
	r := rng.New(1)
	weights := make([]float64, 100)
	var total float64
	for i := range weights {
		weights[i] = r.Float64() * 10
		total += weights[i]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Solve(weights, total/4)
	}
}

func BenchmarkSegmentPacking(b *testing.B) {
	r := rng.New(2)
	weights := make([]float64, 150)
	for i := range weights {
		weights[i] = math.Exp(r.Norm())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Pack(weights, 8)
	}
}
