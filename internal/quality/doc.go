// Package quality computes cheap structural health metrics for a
// clustering — the observability layer that lets an operator judge
// whether an automatically republished model generation is better or
// worse than the one it replaced, without ground truth.
//
// A Report scores one hard partition (each user assigned to their
// top-weight community):
//
//   - Modularity (Girvan–Newman): intra-community edge fraction minus the
//     degree-preserving null expectation. The canonical comparator across
//     algorithms and generations.
//   - Coverage: fraction of friendship edges with both endpoints in the
//     same community.
//   - Conductance per community: cut volume over the smaller side's
//     volume — low means a well-separated community; the report carries
//     the per-community vector and its size-weighted average.
//   - Community-size distribution: non-empty count, min/p50/max, plus a
//     Hill (maximum-likelihood) power-law tail exponent — real networks
//     have heavy-tailed "natural cluster sizes" (Leskovec et al.), so a
//     collapsing or exploding tail is a first-class health signal.
//   - Imbalance (max size over mean size) and normalized size entropy —
//     1.0 is perfectly even, 0 is one giant community.
//   - Drift vs the previous generation: membership churn (fraction of
//     users whose top community changed) and NMI between consecutive
//     assignments, via eval.NMI.
//
// Graph-dependent metrics (modularity, coverage, conductance) need the
// friendship edges and are zero with GraphEdges == 0; every
// membership-shape metric works from the model alone. Reports are
// JSON-safe (no NaNs) and render across generations as a NetworKit-style
// metric-rows × generations table (Table).
//
// The package deliberately does not import internal/serve or
// internal/stream: serve stores Reports per snapshot and exposes them on
// /api/quality and /metrics, stream computes them after each promote, and
// both depend on quality, never the reverse.
package quality
