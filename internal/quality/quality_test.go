package quality

import (
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/eval"
	"repro/internal/socialgraph"
)

// twoTriangles is the classic hand-checkable fixture: triangles {0,1,2}
// and {3,4,5} joined by the single bridge 2–3. With the natural
// partition, m=7, each community holds 3 intra edges and volume 7:
//
//	coverage    = 6/7            ≈ 0.857143
//	modularity  = 2·(3/7 − (7/14)²) = 0.357143
//	conductance = 1/min(7,7) = 1/7 per community
func twoTriangles() []socialgraph.FriendLink {
	return []socialgraph.FriendLink{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2},
		{U: 3, V: 4}, {U: 4, V: 5}, {U: 3, V: 5},
		{U: 2, V: 3},
	}
}

func approx(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("%s = %v, want %v", name, got, want)
	}
}

func TestTwoTrianglesFixture(t *testing.T) {
	assign := []int32{0, 0, 0, 1, 1, 1}
	r := Compute(assign, 2, twoTriangles(), nil)
	if r.GraphEdges != 7 {
		t.Fatalf("edges = %d, want 7", r.GraphEdges)
	}
	approx(t, "coverage", r.Coverage, 0.857143)
	approx(t, "modularity", r.Modularity, 0.357143)
	approx(t, "avgConductance", r.AvgConductance, 0.142857)
	if len(r.PerCommunity) != 2 {
		t.Fatalf("perCommunity = %+v", r.PerCommunity)
	}
	for _, c := range r.PerCommunity {
		if c.Size != 3 {
			t.Fatalf("community %d size %d, want 3", c.ID, c.Size)
		}
		approx(t, "conductance", c.Conductance, 0.142857)
	}
	if r.SizeMin != 3 || r.SizeP50 != 3 || r.SizeMax != 3 {
		t.Fatalf("size stats %d/%d/%d", r.SizeMin, r.SizeP50, r.SizeMax)
	}
	approx(t, "imbalance", r.Imbalance, 1)
	approx(t, "entropy", r.Entropy, 1)
	if r.TailExponent != 0 {
		t.Fatalf("tail exponent on all-equal sizes = %v, want 0", r.TailExponent)
	}
	if r.HasPrev {
		t.Fatal("HasPrev without prev")
	}
}

func TestEdgeDedupAndSelfLoops(t *testing.T) {
	edges := twoTriangles()
	// Reversed duplicates, an exact duplicate, a self-loop, and an
	// out-of-range endpoint must all be ignored.
	edges = append(edges,
		socialgraph.FriendLink{U: 1, V: 0},
		socialgraph.FriendLink{U: 0, V: 1},
		socialgraph.FriendLink{U: 2, V: 2},
		socialgraph.FriendLink{U: 4, V: 99},
	)
	r := Compute([]int32{0, 0, 0, 1, 1, 1}, 2, edges, nil)
	if r.GraphEdges != 7 {
		t.Fatalf("edges = %d, want 7 after dedup", r.GraphEdges)
	}
	approx(t, "modularity", r.Modularity, 0.357143)
}

func TestDriftMetrics(t *testing.T) {
	cur := []int32{0, 0, 0, 1, 1, 1}
	same := []int32{0, 0, 0, 1, 1, 1}
	r := Compute(cur, 2, nil, same)
	if !r.HasPrev {
		t.Fatal("HasPrev not set")
	}
	approx(t, "churn(identical)", r.Churn, 0)
	approx(t, "nmi(identical)", r.PrevNMI, 1)

	prev := []int32{0, 0, 0, 0, 0, 1} // users 3 and 4 moved
	r = Compute(cur, 2, nil, prev)
	approx(t, "churn", r.Churn, 2.0/6.0)
	approx(t, "nmi", r.PrevNMI, eval.NMI(cur, prev))
}

func TestSizeDistribution(t *testing.T) {
	// Sizes 4/2/1 across 4 slots (one empty).
	assign := []int32{0, 0, 0, 0, 1, 1, 2}
	r := Compute(assign, 4, nil, nil)
	if r.Communities != 3 {
		t.Fatalf("communities = %d", r.Communities)
	}
	if r.SizeMin != 1 || r.SizeP50 != 2 || r.SizeMax != 4 {
		t.Fatalf("size stats %d/%d/%d", r.SizeMin, r.SizeP50, r.SizeMax)
	}
	approx(t, "imbalance", r.Imbalance, 4.0/(7.0/3.0))
	wantH := 0.0
	for _, s := range []float64{4, 2, 1} {
		p := s / 7
		wantH -= p * math.Log(p)
	}
	approx(t, "entropy", r.Entropy, wantH/math.Log(3))
	if r.GraphEdges != 0 || r.Modularity != 0 {
		t.Fatal("graph metrics leaked into a membership-only report")
	}
}

func TestTailExponentHill(t *testing.T) {
	// Sizes 1,2,4,8,16: p50 = 4, tail {4,8,16},
	// α = 1 + 3/(ln1 + ln2 + ln4) = 1 + 3/ln8.
	var assign []int32
	for c, s := range []int{1, 2, 4, 8, 16} {
		for i := 0; i < s; i++ {
			assign = append(assign, int32(c))
		}
	}
	r := Compute(assign, 5, nil, nil)
	approx(t, "tailExponent", r.TailExponent, 1+3/math.Log(8))
}

func TestReportJSONSafe(t *testing.T) {
	// Degenerate inputs must still marshal (no NaN/Inf in any field).
	for _, r := range []*Report{
		Compute(nil, 0, nil, nil),
		Compute([]int32{0}, 1, nil, []int32{0}),
		Compute([]int32{0, 0}, 1, []socialgraph.FriendLink{{U: 0, V: 1}}, nil),
	} {
		if _, err := json.Marshal(r); err != nil {
			t.Fatalf("marshal: %v", err)
		}
	}
}

func TestTable(t *testing.T) {
	a := Compute([]int32{0, 0, 0, 1, 1, 1}, 2, twoTriangles(), nil)
	a.Algo, a.Generation = "cpd", 3
	b := Compute([]int32{0, 0, 0, 1, 1, 1}, 2, twoTriangles(), []int32{0, 0, 1, 1, 1, 1})
	b.Algo, b.Generation = "cpd", 4
	out := Table([]*Report{a, b})
	for _, want := range []string{"modularity", "gen 3/cpd", "gen 4/cpd", "0.357", "churn"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(Table(nil), "no quality reports") {
		t.Fatal("empty table")
	}
}
