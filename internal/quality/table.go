package quality

import (
	"fmt"
	"strings"
	"text/tabwriter"
)

// Table renders reports as a NetworKit-style comparison table — metric
// rows × one column per report (generations of one model, or different
// algorithms side by side). Reports render in the order given.
func Table(reports []*Report) string {
	if len(reports) == 0 {
		return "no quality reports\n"
	}
	var b strings.Builder
	w := tabwriter.NewWriter(&b, 2, 0, 2, ' ', tabwriter.AlignRight)
	head := func(r *Report) string {
		if r.Generation > 0 || r.Algo == "" {
			return fmt.Sprintf("gen %d/%s", r.Generation, orDash(r.Algo))
		}
		return r.Algo
	}
	row := func(label string, cell func(*Report) string) {
		fmt.Fprintf(w, "%s\t", label)
		for _, r := range reports {
			fmt.Fprintf(w, "%s\t", cell(r))
		}
		fmt.Fprintln(w)
	}
	row("metric", head)
	row("users", func(r *Report) string { return fmt.Sprintf("%d", r.Users) })
	row("communities", func(r *Report) string { return fmt.Sprintf("%d", r.Communities) })
	row("size min/p50/max", func(r *Report) string {
		return fmt.Sprintf("%d/%d/%d", r.SizeMin, r.SizeP50, r.SizeMax)
	})
	row("imbalance", f3(func(r *Report) float64 { return r.Imbalance }))
	row("size entropy", f3(func(r *Report) float64 { return r.Entropy }))
	row("tail exponent", f3(func(r *Report) float64 { return r.TailExponent }))
	row("edges", func(r *Report) string { return fmt.Sprintf("%d", r.GraphEdges) })
	row("modularity", f3(func(r *Report) float64 { return r.Modularity }))
	row("coverage", f3(func(r *Report) float64 { return r.Coverage }))
	row("avg conductance", f3(func(r *Report) float64 { return r.AvgConductance }))
	row("churn", func(r *Report) string {
		if !r.HasPrev {
			return "-"
		}
		return fmt.Sprintf("%.3f", r.Churn)
	})
	row("NMI vs prev", func(r *Report) string {
		if !r.HasPrev {
			return "-"
		}
		return fmt.Sprintf("%.3f", r.PrevNMI)
	})
	row("cost", func(r *Report) string { return fmt.Sprintf("%.1fms", float64(r.CostMicros)/1000) })
	w.Flush()
	return b.String()
}

func f3(get func(*Report) float64) func(*Report) string {
	return func(r *Report) string { return fmt.Sprintf("%.3f", get(r)) }
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
