package quality

import (
	"math"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/socialgraph"
)

// CommunityQuality is one non-empty community's row in a Report.
type CommunityQuality struct {
	ID          int     `json:"id"`
	Size        int     `json:"size"`
	Conductance float64 `json:"conductance"`
}

// Report scores one hard partition. See the package comment for what each
// metric means. All float fields are finite (JSON-safe).
type Report struct {
	// Algo names the clustering being scored ("cpd", "plp").
	Algo string `json:"algo"`
	// Generation and Version tie the report to a published snapshot
	// generation; static loads leave them 0.
	Generation uint64 `json:"generation"`
	Version    uint64 `json:"version,omitempty"`
	UnixMilli  int64  `json:"unixMilli,omitempty"`

	Users       int `json:"users"`
	Communities int `json:"communities"` // non-empty communities
	GraphEdges  int `json:"graphEdges"`  // deduped undirected edges scored (0 = membership-only report)

	Modularity     float64 `json:"modularity"`
	Coverage       float64 `json:"coverage"`
	AvgConductance float64 `json:"avgConductance"`

	SizeMin      int     `json:"sizeMin"`
	SizeP50      int     `json:"sizeP50"`
	SizeMax      int     `json:"sizeMax"`
	TailExponent float64 `json:"tailExponent"` // Hill MLE on sizes ≥ p50; 0 when the tail is degenerate
	Imbalance    float64 `json:"imbalance"`    // max size / mean size
	Entropy      float64 `json:"entropy"`      // normalized size entropy, 1 = even, 0 = one giant community

	// Drift vs the previous generation's assignments (HasPrev gates both).
	HasPrev bool    `json:"hasPrev"`
	Churn   float64 `json:"churn"`
	PrevNMI float64 `json:"prevNMI"`

	PerCommunity []CommunityQuality `json:"perCommunity,omitempty"`

	// CostMicros is what computing this report took — the publish-path
	// overhead an operator trades for the visibility.
	CostMicros int64 `json:"costMicros"`
}

// Assignments hardens a model's mixed membership: each user's top-weight
// community (ties to the lowest id), the partition every metric scores.
func Assignments(m *core.Model) []int32 {
	out := make([]int32, m.NumUsers)
	for u := range out {
		out[u] = int32(m.TopCommunity(u))
	}
	return out
}

// FromModel scores a trained model's hard partition. friends may be nil
// (membership-shape metrics only); prev may be nil (no drift row).
func FromModel(m *core.Model, friends []socialgraph.FriendLink, prev []int32) *Report {
	r := Compute(Assignments(m), m.Cfg.NumCommunities, friends, prev)
	r.Algo = "cpd"
	return r
}

// Compute scores the hard partition assign (one community id per user,
// numComms total slots) against the friendship edges. Edges are treated
// as undirected and deduplicated, self-loops and out-of-range endpoints
// skipped; friends == nil yields a membership-only report. prev, when
// non-nil, is the previous generation's partition for the drift metrics.
func Compute(assign []int32, numComms int, friends []socialgraph.FriendLink, prev []int32) *Report {
	start := time.Now()
	n := len(assign)
	r := &Report{Users: n}
	if n == 0 || numComms <= 0 {
		r.CostMicros = time.Since(start).Microseconds()
		return r
	}

	sizes := make([]int, numComms)
	for _, c := range assign {
		if c >= 0 && int(c) < numComms {
			sizes[c]++
		}
	}
	r.sizeStats(sizes, n)

	if len(friends) > 0 {
		r.graphStats(assign, numComms, sizes, friends)
	}

	if prev != nil {
		common := n
		if len(prev) < common {
			common = len(prev)
		}
		if common > 0 {
			changed := 0
			for i := 0; i < common; i++ {
				if assign[i] != prev[i] {
					changed++
				}
			}
			r.HasPrev = true
			r.Churn = float64(changed) / float64(common)
			r.PrevNMI = sanitize(eval.NMI(assign[:common], prev[:common]))
		}
	}
	r.CostMicros = time.Since(start).Microseconds()
	return r
}

// sizeStats fills the membership-shape block from the per-community sizes.
func (r *Report) sizeStats(sizes []int, n int) {
	nonEmpty := make([]int, 0, len(sizes))
	for _, s := range sizes {
		if s > 0 {
			nonEmpty = append(nonEmpty, s)
		}
	}
	r.Communities = len(nonEmpty)
	if len(nonEmpty) == 0 {
		return
	}
	sort.Ints(nonEmpty)
	r.SizeMin = nonEmpty[0]
	r.SizeP50 = nonEmpty[len(nonEmpty)/2]
	r.SizeMax = nonEmpty[len(nonEmpty)-1]
	mean := float64(n) / float64(len(nonEmpty))
	r.Imbalance = float64(r.SizeMax) / mean

	if len(nonEmpty) > 1 {
		var h float64
		for _, s := range nonEmpty {
			p := float64(s) / float64(n)
			h -= p * math.Log(p)
		}
		r.Entropy = h / math.Log(float64(len(nonEmpty)))
	}

	// Hill MLE tail exponent over sizes ≥ the median size:
	// α = 1 + k / Σ ln(s_i / s_min). Degenerate tails (all-equal sizes,
	// fewer than 3 points) report 0 rather than a meaningless fit.
	xmin := float64(r.SizeP50)
	var sum float64
	k := 0
	for _, s := range nonEmpty {
		if s >= r.SizeP50 {
			sum += math.Log(float64(s) / xmin)
			k++
		}
	}
	if k >= 3 && sum > 0 {
		r.TailExponent = 1 + float64(k)/sum
	}
}

// graphStats fills modularity, coverage and conductance from the edges.
func (r *Report) graphStats(assign []int32, numComms int, sizes []int, friends []socialgraph.FriendLink) {
	n := len(assign)
	degree := make([]int, n)
	intra := make([]int, numComms)
	cut := make([]int, numComms)
	seen := make(map[int64]struct{}, len(friends))
	edges := 0
	for _, f := range friends {
		u, v := int(f.U), int(f.V)
		if u == v || u < 0 || v < 0 || u >= n || v >= n {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := int64(u)*int64(n) + int64(v)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		edges++
		degree[u]++
		degree[v]++
		cu, cv := assign[u], assign[v]
		if cu == cv {
			if cu >= 0 && int(cu) < numComms {
				intra[cu]++
			}
		} else {
			if cu >= 0 && int(cu) < numComms {
				cut[cu]++
			}
			if cv >= 0 && int(cv) < numComms {
				cut[cv]++
			}
		}
	}
	r.GraphEdges = edges
	if edges == 0 {
		return
	}
	volume := make([]int, numComms)
	for u, d := range degree {
		if c := assign[u]; c >= 0 && int(c) < numComms {
			volume[c] += d
		}
	}
	m2 := float64(2 * edges)
	var q, coverage float64
	var condSum float64
	scored := 0
	for c := 0; c < numComms; c++ {
		if sizes[c] == 0 {
			continue
		}
		q += float64(intra[c])/float64(edges) - (float64(volume[c])/m2)*(float64(volume[c])/m2)
		coverage += float64(intra[c])
		cond := conductance(cut[c], volume[c], 2*edges)
		condSum += cond
		scored++
		r.PerCommunity = append(r.PerCommunity, CommunityQuality{ID: c, Size: sizes[c], Conductance: round6(cond)})
	}
	r.Modularity = round6(q)
	r.Coverage = round6(coverage / float64(edges))
	if scored > 0 {
		r.AvgConductance = round6(condSum / float64(scored))
	}
}

// conductance is cut / min(vol, totalVol - vol); communities touching no
// edges, or holding every edge, score 0 (perfectly separated by
// convention — there is nothing to cut).
func conductance(cut, vol, totalVol int) float64 {
	denom := vol
	if totalVol-vol < denom {
		denom = totalVol - vol
	}
	if denom <= 0 {
		return 0
	}
	return float64(cut) / float64(denom)
}

func sanitize(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return v
}

func round6(v float64) float64 {
	return math.Round(sanitize(v)*1e6) / 1e6
}
