package socialgraph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The on-disk format is line-oriented TSV-ish text:
//
//	graph <numUsers> <numWords>
//	attrs <numAttrs>            (optional; enables attr records)
//	doc <user> <time> <w1> <w2> ...
//	attr <user> <a1> <a2> ...
//	friend <u> <v>
//	diff <i> <j> <t>
//
// Lines starting with '#' and blank lines are ignored. Documents must
// appear before diffusion links that reference them (they do, since docs
// are written first).

// WriteTo serializes g in the text format above.
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	count := func(k int, err error) error {
		n += int64(k)
		return err
	}
	if err := count(fmt.Fprintf(bw, "graph %d %d\n", g.NumUsers, g.NumWords)); err != nil {
		return n, err
	}
	if g.Attrs != nil {
		if err := count(fmt.Fprintf(bw, "attrs %d\n", g.NumAttrs)); err != nil {
			return n, err
		}
		for u, as := range g.Attrs {
			if len(as) == 0 {
				continue
			}
			if err := count(fmt.Fprintf(bw, "attr %d", u)); err != nil {
				return n, err
			}
			for _, a := range as {
				if err := count(fmt.Fprintf(bw, " %d", a)); err != nil {
					return n, err
				}
			}
			if err := count(fmt.Fprintln(bw)); err != nil {
				return n, err
			}
		}
	}
	for _, d := range g.Docs {
		if err := count(fmt.Fprintf(bw, "doc %d %d", d.User, d.Time)); err != nil {
			return n, err
		}
		for _, wid := range d.Words {
			if err := count(fmt.Fprintf(bw, " %d", wid)); err != nil {
				return n, err
			}
		}
		if err := count(fmt.Fprintln(bw)); err != nil {
			return n, err
		}
	}
	for _, f := range g.Friends {
		if err := count(fmt.Fprintf(bw, "friend %d %d\n", f.U, f.V)); err != nil {
			return n, err
		}
	}
	for _, e := range g.Diffs {
		if err := count(fmt.Fprintf(bw, "diff %d %d %d\n", e.I, e.J, e.T)); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// Read parses the WriteTo format and validates the result.
func Read(r io.Reader) (*Graph, error) {
	g := &Graph{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	sawHeader := false
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "graph":
			if sawHeader {
				return nil, fmt.Errorf("socialgraph: duplicate graph header at line %d", lineNo)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("socialgraph: malformed graph header at line %d", lineNo)
			}
			nu, err1 := strconv.Atoi(fields[1])
			nw, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("socialgraph: malformed graph header at line %d", lineNo)
			}
			g.NumUsers, g.NumWords = nu, nw
			sawHeader = true
		case "attrs":
			if !sawHeader || len(fields) != 2 {
				return nil, fmt.Errorf("socialgraph: malformed attrs header at line %d", lineNo)
			}
			na, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("socialgraph: malformed attrs header at line %d", lineNo)
			}
			g.NumAttrs = na
			g.Attrs = make([][]int32, g.NumUsers)
		case "attr":
			if !sawHeader || g.Attrs == nil || len(fields) < 3 {
				return nil, fmt.Errorf("socialgraph: malformed attr line %d (missing attrs header?)", lineNo)
			}
			u, err := strconv.Atoi(fields[1])
			if err != nil || u < 0 || u >= g.NumUsers {
				return nil, fmt.Errorf("socialgraph: bad attr user at line %d", lineNo)
			}
			for _, f := range fields[2:] {
				a, err := strconv.Atoi(f)
				if err != nil {
					return nil, fmt.Errorf("socialgraph: bad attr id at line %d: %w", lineNo, err)
				}
				g.Attrs[u] = append(g.Attrs[u], int32(a))
			}
		case "doc":
			if !sawHeader {
				return nil, fmt.Errorf("socialgraph: doc before graph header at line %d", lineNo)
			}
			if len(fields) < 4 {
				return nil, fmt.Errorf("socialgraph: doc with fewer than one word at line %d", lineNo)
			}
			user, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("socialgraph: bad doc user at line %d: %w", lineNo, err)
			}
			t, err := strconv.ParseInt(fields[2], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("socialgraph: bad doc time at line %d: %w", lineNo, err)
			}
			words := make([]int32, 0, len(fields)-3)
			for _, f := range fields[3:] {
				wid, err := strconv.Atoi(f)
				if err != nil {
					return nil, fmt.Errorf("socialgraph: bad word id at line %d: %w", lineNo, err)
				}
				words = append(words, int32(wid))
			}
			g.Docs = append(g.Docs, Doc{User: int32(user), Time: t, Words: words})
		case "friend":
			if !sawHeader || len(fields) != 3 {
				return nil, fmt.Errorf("socialgraph: malformed friend line %d", lineNo)
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("socialgraph: malformed friend line %d", lineNo)
			}
			g.Friends = append(g.Friends, FriendLink{int32(u), int32(v)})
		case "diff":
			if !sawHeader || len(fields) != 4 {
				return nil, fmt.Errorf("socialgraph: malformed diff line %d", lineNo)
			}
			i, err1 := strconv.Atoi(fields[1])
			j, err2 := strconv.Atoi(fields[2])
			t, err3 := strconv.ParseInt(fields[3], 10, 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("socialgraph: malformed diff line %d", lineNo)
			}
			g.Diffs = append(g.Diffs, DiffLink{int32(i), int32(j), t})
		default:
			return nil, fmt.Errorf("socialgraph: unknown record %q at line %d", fields[0], lineNo)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("socialgraph: reading graph: %w", err)
	}
	if !sawHeader {
		return nil, fmt.Errorf("socialgraph: missing graph header")
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
