package socialgraph

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// smallGraph builds a hand-checked graph:
//
//	users 0,1,2; docs: d0,d1 by u0; d2 by u1; d3 by u2
//	friends: 0->1, 1->2
//	diffs: d2 diffuses d0 at t=5, d3 diffuses d2 at t=9
func smallGraph() *Graph {
	return &Graph{
		NumUsers: 3,
		NumWords: 10,
		Docs: []Doc{
			{User: 0, Time: 1, Words: []int32{0, 1}},
			{User: 0, Time: 2, Words: []int32{2}},
			{User: 1, Time: 4, Words: []int32{3, 4}},
			{User: 2, Time: 9, Words: []int32{5}},
		},
		Friends: []FriendLink{{0, 1}, {1, 2}},
		Diffs:   []DiffLink{{I: 2, J: 0, T: 5}, {I: 3, J: 2, T: 9}},
	}
}

func TestValidateOK(t *testing.T) {
	if err := smallGraph().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		mod  func(*Graph)
	}{
		{"doc user out of range", func(g *Graph) { g.Docs[0].User = 9 }},
		{"empty doc", func(g *Graph) { g.Docs[0].Words = nil }},
		{"word out of range", func(g *Graph) { g.Docs[0].Words = []int32{99} }},
		{"negative word", func(g *Graph) { g.Docs[0].Words = []int32{-1} }},
		{"friend out of range", func(g *Graph) { g.Friends[0].V = 9 }},
		{"friend self-loop", func(g *Graph) { g.Friends[0].V = g.Friends[0].U }},
		{"diff out of range", func(g *Graph) { g.Diffs[0].J = 99 }},
		{"diff self-loop", func(g *Graph) { g.Diffs[0].J = g.Diffs[0].I }},
		{"negative users", func(g *Graph) { g.NumUsers = -1 }},
	}
	for _, c := range cases {
		g := smallGraph()
		c.mod(g)
		if err := g.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestIndexes(t *testing.T) {
	g := smallGraph()
	if got := g.UserDocs(0); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("UserDocs(0) = %v", got)
	}
	// Λ_1 = {0, 2} (both directions).
	if got := g.FriendNeighbors(1); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("FriendNeighbors(1) = %v", got)
	}
	// Λ for doc 2: incident to both diffusion links.
	if got := g.DocDiffLinks(2); len(got) != 2 {
		t.Fatalf("DocDiffLinks(2) = %v", got)
	}
	if got := g.DocDiffLinks(1); len(got) != 0 {
		t.Fatalf("DocDiffLinks(1) = %v", got)
	}
}

func TestNeighborDedup(t *testing.T) {
	g := smallGraph()
	g.Friends = append(g.Friends, FriendLink{1, 0}) // reverse duplicate
	g.InvalidateIndexes()
	if got := g.FriendNeighbors(0); len(got) != 1 || got[0] != 1 {
		t.Fatalf("FriendNeighbors(0) = %v, want deduped {1}", got)
	}
}

func TestDropUsersWithoutDocs(t *testing.T) {
	g := smallGraph()
	g.NumUsers = 5 // users 3, 4 have no docs
	g.Friends = append(g.Friends, FriendLink{0, 4})
	removed := g.DropUsersWithoutDocs()
	if removed != 2 {
		t.Fatalf("removed = %d, want 2", removed)
	}
	if g.NumUsers != 3 {
		t.Fatalf("NumUsers = %d", g.NumUsers)
	}
	if len(g.Friends) != 2 {
		t.Fatalf("dangling friendship link kept: %v", g.Friends)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.DropUsersWithoutDocs() != 0 {
		t.Fatal("second drop removed users")
	}
}

func TestFeatures(t *testing.T) {
	g := smallGraph()
	// User 1: followers(in)=1 (0->1), followees(out)=1 (1->2) => ratio 1.
	if got := g.Popularity(1); math.Abs(got-math.Log1p(1)) > 1e-12 {
		t.Fatalf("Popularity(1) = %v", got)
	}
	// User 1: 1 diffusing doc (d2) of 1 doc => activeness ratio 1.
	if got := g.Activeness(1); math.Abs(got-math.Log1p(1)) > 1e-12 {
		t.Fatalf("Activeness(1) = %v", got)
	}
	// User 0: no retweets among 2 docs.
	if got := g.Activeness(0); got != 0 {
		t.Fatalf("Activeness(0) = %v", got)
	}
	f := g.PairFeatures(nil, 1, 2)
	if len(f) != FeatureDim || f[FeatureDim-1] != 1 {
		t.Fatalf("PairFeatures = %v", f)
	}
	if f[0] != g.Popularity(1) || f[2] != g.Popularity(2) {
		t.Fatalf("PairFeatures order wrong: %v", f)
	}
	// RawPopularity of user 1 = 1/1.
	if got := g.RawPopularity(1); got != 1 {
		t.Fatalf("RawPopularity(1) = %v", got)
	}
}

func TestTimeBuckets(t *testing.T) {
	g := smallGraph()
	buckets, nb := g.TimeBuckets(4)
	if nb != 4 {
		t.Fatalf("nb = %d", nb)
	}
	if buckets[0] != 0 {
		t.Fatalf("earliest doc bucket = %d", buckets[0])
	}
	if buckets[3] != 3 {
		t.Fatalf("latest doc bucket = %d", buckets[3])
	}
	// Degenerate: all same timestamp.
	for i := range g.Docs {
		g.Docs[i].Time = 7
	}
	buckets, nb = g.TimeBuckets(4)
	if nb != 1 {
		t.Fatalf("constant-time nb = %d", nb)
	}
	for _, b := range buckets {
		if b != 0 {
			t.Fatalf("constant-time bucket = %d", b)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	g := smallGraph()
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumUsers != g.NumUsers || g2.NumWords != g.NumWords {
		t.Fatal("header mismatch")
	}
	if len(g2.Docs) != len(g.Docs) || len(g2.Friends) != len(g.Friends) || len(g2.Diffs) != len(g.Diffs) {
		t.Fatal("length mismatch")
	}
	for i := range g.Docs {
		if g2.Docs[i].User != g.Docs[i].User || g2.Docs[i].Time != g.Docs[i].Time {
			t.Fatalf("doc %d mismatch", i)
		}
		for k := range g.Docs[i].Words {
			if g2.Docs[i].Words[k] != g.Docs[i].Words[k] {
				t.Fatalf("doc %d words mismatch", i)
			}
		}
	}
}

func TestRoundTripRandom(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		g := &Graph{NumUsers: 2 + r.Intn(5), NumWords: 5 + r.Intn(10)}
		for i := 0; i < 3+r.Intn(10); i++ {
			words := make([]int32, 1+r.Intn(4))
			for k := range words {
				words[k] = int32(r.Intn(g.NumWords))
			}
			g.Docs = append(g.Docs, Doc{User: int32(r.Intn(g.NumUsers)), Time: int64(r.Intn(100)), Words: words})
		}
		for i := 0; i < r.Intn(6); i++ {
			u, v := r.Intn(g.NumUsers), r.Intn(g.NumUsers)
			if u != v {
				g.Friends = append(g.Friends, FriendLink{int32(u), int32(v)})
			}
		}
		var buf bytes.Buffer
		if _, err := g.WriteTo(&buf); err != nil {
			return false
		}
		first := buf.String()
		g2, err := Read(strings.NewReader(first))
		if err != nil {
			return false
		}
		var buf2 bytes.Buffer
		if _, err := g2.WriteTo(&buf2); err != nil {
			return false
		}
		return first == buf2.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReadMalformed(t *testing.T) {
	cases := []string{
		"",                                    // no header
		"doc 0 1 2\n",                         // doc before header
		"graph 1\n",                           // short header
		"graph 1 10\ngraph 1 10\n",            // duplicate header
		"graph 1 10\ndoc 0 1\n",               // doc without words
		"graph 1 10\ndoc x 1 2\n",             // bad user
		"graph 1 10\nfriend 0\n",              // short friend
		"graph 1 10\nwat 1 2\n",               // unknown record
		"graph 2 10\ndoc 0 1 2\ndiff 0 0 1\n", // self-loop diff fails validation
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("Read(%q) succeeded, want error", c)
		}
	}
	// Comments and blank lines are fine.
	ok := "# comment\n\ngraph 1 10\ndoc 0 1 2 3\n"
	if _, err := Read(strings.NewReader(ok)); err != nil {
		t.Fatalf("Read with comments: %v", err)
	}
}

func TestStats(t *testing.T) {
	st := smallGraph().Stats()
	if st.Users != 3 || st.FriendLinks != 2 || st.DiffLinks != 2 || st.Docs != 4 || st.Words != 10 {
		t.Fatalf("Stats = %+v", st)
	}
}

func TestSubsample(t *testing.T) {
	g := smallGraph()
	// p=1 returns the graph unchanged.
	if got := Subsample(g, 1, 1); got != g {
		t.Fatal("p=1 should return the same graph")
	}
	// p=0 keeps nothing.
	empty := Subsample(g, 0, 1)
	if len(empty.Docs) != 0 || len(empty.Diffs) != 0 {
		t.Fatalf("p=0 kept data: %+v", empty.Stats())
	}
	// Random fractions always produce valid graphs.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		p := r.Float64()
		s := Subsample(smallGraph(), p, seed)
		return s.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSubsampleFraction(t *testing.T) {
	// On a big synthetic-ish graph the kept fraction should be near p.
	r := rng.New(5)
	g := &Graph{NumUsers: 50, NumWords: 20}
	for i := 0; i < 2000; i++ {
		g.Docs = append(g.Docs, Doc{User: int32(r.Intn(50)), Words: []int32{int32(r.Intn(20))}})
	}
	s := Subsample(g, 0.5, 7)
	got := float64(len(s.Docs)) / float64(len(g.Docs))
	if math.Abs(got-0.5) > 0.05 {
		t.Fatalf("kept fraction = %v, want ~0.5", got)
	}
}
