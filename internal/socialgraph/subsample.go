package socialgraph

import "repro/internal/rng"

// Subsample returns a new graph keeping roughly fraction p of the
// documents, friendship links and diffusion links — the protocol behind
// the paper's Fig. 10(a) "training time vs data set size" sweep. Document
// ids are remapped densely; diffusion links survive only if both endpoint
// documents survive. Users are kept (with their original ids) so link
// endpoints stay valid; users left without documents keep an empty
// document set, matching how a sampled crawl would look.
func Subsample(g *Graph, p float64, seed uint64) *Graph {
	if p >= 1 {
		return g
	}
	if p < 0 {
		p = 0
	}
	r := rng.New(seed)
	out := &Graph{NumUsers: g.NumUsers, NumWords: g.NumWords}
	remap := make([]int32, len(g.Docs))
	for i := range remap {
		remap[i] = -1
	}
	for i, d := range g.Docs {
		if r.Float64() < p {
			remap[i] = int32(len(out.Docs))
			out.Docs = append(out.Docs, d)
		}
	}
	for _, f := range g.Friends {
		if r.Float64() < p {
			out.Friends = append(out.Friends, f)
		}
	}
	for _, e := range g.Diffs {
		if remap[e.I] < 0 || remap[e.J] < 0 {
			continue
		}
		if r.Float64() < p {
			out.Diffs = append(out.Diffs, DiffLink{I: remap[e.I], J: remap[e.J], T: e.T})
		}
	}
	return out
}
