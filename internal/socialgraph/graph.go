// Package socialgraph implements the paper's Definition 1: a social graph
// G = (U, D, F, E) of users, user-published documents, directed friendship
// links between users and time-stamped diffusion links between documents
// (tweet→retweet in Twitter, citing→cited paper in DBLP). It provides the
// adjacency indexes the Gibbs sampler iterates over (Λ_u, Λ_i), the
// individual-preference features of Sect. 3.1 (user popularity and
// activeness), dataset statistics (Table 3) and (de)serialisation.
package socialgraph

import (
	"fmt"
	"sort"
)

// Doc is a user-published document: a tweet or a paper title, reduced to
// vocabulary ids, with the publication timestamp used by the
// topic-popularity diffusion factor.
type Doc struct {
	User  int32
	Time  int64
	Words []int32
}

// FriendLink is a directed friendship link F_uv: u follows v (Twitter) or
// u co-authors with v (DBLP; stored in both directions).
type FriendLink struct {
	U, V int32
}

// DiffLink is a directed diffusion link E_ij at time T: document I diffuses
// (retweets / cites) document J.
type DiffLink struct {
	I, J int32
	T    int64
}

// Graph is the full social graph. NumWords is the vocabulary size |W|; the
// synthetic generator produces anonymous word ids, while real-text loaders
// carry a corpus.Vocabulary alongside.
//
// Attrs optionally carries categorical attribute tokens per user (the
// paper's future-work "other types of X" — e.g. Facebook profile
// attributes); NumAttrs is the attribute vocabulary size. Both are zero on
// attribute-free graphs.
type Graph struct {
	NumUsers int
	NumWords int
	NumAttrs int
	Docs     []Doc
	Friends  []FriendLink
	Diffs    []DiffLink
	Attrs    [][]int32 // per-user attribute tokens (nil when unused)

	// Lazily built indexes (see BuildIndexes).
	userDocs   [][]int32
	friendAdj  [][]int32
	docDiffs   [][]int32
	indexesOK  bool
	featsOK    bool
	popularity []float64
	activeness []float64
}

// Stats summarizes a graph in the shape of the paper's Table 3.
type Stats struct {
	Users, FriendLinks, DiffLinks, Docs, Words int
}

// Stats returns the Table-3 statistics of g.
func (g *Graph) Stats() Stats {
	return Stats{
		Users:       g.NumUsers,
		FriendLinks: len(g.Friends),
		DiffLinks:   len(g.Diffs),
		Docs:        len(g.Docs),
		Words:       g.NumWords,
	}
}

// Validate checks referential integrity: every link endpoint and document
// field must be in range, and no document may be empty. It returns the
// first problem found.
func (g *Graph) Validate() error {
	if g.NumUsers < 0 || g.NumWords < 0 {
		return fmt.Errorf("socialgraph: negative dimensions (users=%d words=%d)", g.NumUsers, g.NumWords)
	}
	for i, d := range g.Docs {
		if d.User < 0 || int(d.User) >= g.NumUsers {
			return fmt.Errorf("socialgraph: doc %d has out-of-range user %d", i, d.User)
		}
		if len(d.Words) == 0 {
			return fmt.Errorf("socialgraph: doc %d is empty", i)
		}
		for _, w := range d.Words {
			if w < 0 || int(w) >= g.NumWords {
				return fmt.Errorf("socialgraph: doc %d has out-of-range word %d", i, w)
			}
		}
	}
	for i, f := range g.Friends {
		if f.U < 0 || int(f.U) >= g.NumUsers || f.V < 0 || int(f.V) >= g.NumUsers {
			return fmt.Errorf("socialgraph: friendship link %d (%d->%d) out of range", i, f.U, f.V)
		}
		if f.U == f.V {
			return fmt.Errorf("socialgraph: friendship link %d is a self-loop on user %d", i, f.U)
		}
	}
	for i, e := range g.Diffs {
		if e.I < 0 || int(e.I) >= len(g.Docs) || e.J < 0 || int(e.J) >= len(g.Docs) {
			return fmt.Errorf("socialgraph: diffusion link %d (%d->%d) out of range", i, e.I, e.J)
		}
		if e.I == e.J {
			return fmt.Errorf("socialgraph: diffusion link %d is a self-loop on doc %d", i, e.I)
		}
	}
	if g.Attrs != nil {
		if len(g.Attrs) != g.NumUsers {
			return fmt.Errorf("socialgraph: Attrs has %d entries for %d users", len(g.Attrs), g.NumUsers)
		}
		for u, as := range g.Attrs {
			for _, a := range as {
				if a < 0 || int(a) >= g.NumAttrs {
					return fmt.Errorf("socialgraph: user %d has out-of-range attribute %d", u, a)
				}
			}
		}
	}
	return nil
}

// UserAttrs returns user u's attribute tokens (nil on attribute-free
// graphs).
func (g *Graph) UserAttrs(u int) []int32 {
	if g.Attrs == nil {
		return nil
	}
	return g.Attrs[u]
}

// BuildIndexes constructs the adjacency indexes; it is idempotent and is
// called automatically by the accessors below.
func (g *Graph) BuildIndexes() {
	if g.indexesOK {
		return
	}
	g.userDocs = make([][]int32, g.NumUsers)
	for i, d := range g.Docs {
		g.userDocs[d.User] = append(g.userDocs[d.User], int32(i))
	}
	// Friendship neighborhood Λ_u: users v with (u,v) or (v,u) in F,
	// deduplicated.
	g.friendAdj = make([][]int32, g.NumUsers)
	for _, f := range g.Friends {
		g.friendAdj[f.U] = append(g.friendAdj[f.U], f.V)
		g.friendAdj[f.V] = append(g.friendAdj[f.V], f.U)
	}
	for u := range g.friendAdj {
		g.friendAdj[u] = dedupSorted(g.friendAdj[u])
	}
	// Diffusion neighborhood Λ_i: ids of diffusion links incident to doc i
	// (either side).
	g.docDiffs = make([][]int32, len(g.Docs))
	for k, e := range g.Diffs {
		g.docDiffs[e.I] = append(g.docDiffs[e.I], int32(k))
		if e.J != e.I {
			g.docDiffs[e.J] = append(g.docDiffs[e.J], int32(k))
		}
	}
	g.indexesOK = true
}

func dedupSorted(xs []int32) []int32 {
	if len(xs) < 2 {
		return xs
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// UserDocs returns the document ids published by user u.
func (g *Graph) UserDocs(u int) []int32 {
	g.BuildIndexes()
	return g.userDocs[u]
}

// FriendNeighbors returns Λ_u: the deduplicated friendship neighborhood of
// user u (both link directions).
func (g *Graph) FriendNeighbors(u int) []int32 {
	g.BuildIndexes()
	return g.friendAdj[u]
}

// DocDiffLinks returns Λ_i: the ids (into Diffs) of diffusion links
// incident to document i.
func (g *Graph) DocDiffLinks(i int) []int32 {
	g.BuildIndexes()
	return g.docDiffs[i]
}

// InvalidateIndexes must be called after mutating Docs/Friends/Diffs so the
// lazily built indexes are rebuilt.
func (g *Graph) InvalidateIndexes() {
	g.indexesOK = false
	g.featsOK = false
}

// DropUsersWithoutDocs removes users that have no documents (the paper's
// final preprocessing step), remapping user ids densely and dropping
// friendship links that lose an endpoint. It returns the number of users
// removed.
func (g *Graph) DropUsersWithoutDocs() int {
	hasDoc := make([]bool, g.NumUsers)
	for _, d := range g.Docs {
		hasDoc[d.User] = true
	}
	remap := make([]int32, g.NumUsers)
	next := int32(0)
	removed := 0
	for u := 0; u < g.NumUsers; u++ {
		if hasDoc[u] {
			remap[u] = next
			next++
		} else {
			remap[u] = -1
			removed++
		}
	}
	if removed == 0 {
		return 0
	}
	for i := range g.Docs {
		g.Docs[i].User = remap[g.Docs[i].User]
	}
	kept := g.Friends[:0]
	for _, f := range g.Friends {
		if remap[f.U] >= 0 && remap[f.V] >= 0 {
			kept = append(kept, FriendLink{remap[f.U], remap[f.V]})
		}
	}
	g.Friends = kept
	if g.Attrs != nil {
		newAttrs := make([][]int32, next)
		for u, as := range g.Attrs {
			if remap[u] >= 0 {
				newAttrs[remap[u]] = as
			}
		}
		g.Attrs = newAttrs
	}
	g.NumUsers = int(next)
	g.InvalidateIndexes()
	return removed
}
