package socialgraph

import "math"

// FeatureDim is the length of the pairwise feature vector f_uv used by the
// individual-preference diffusion factor ν^T f_uv (Sect. 3.1): popularity
// and activeness of each endpoint plus a bias term.
const FeatureDim = 5

// buildFeatures computes the two per-user features of Sect. 3.1:
//
//   - popularity  = |Followers(u)| / |Followees(u)|   (in/out friendship degree)
//   - activeness  = |Retweets(u)| / |Tweets(u)|       (diffusing docs / all docs)
//
// both passed through log1p to keep the ratios in a sane numeric range for
// the logistic regression (the raw ratio is unbounded; the log transform
// preserves ordering, which is all the linear term uses).
func (g *Graph) buildFeatures() {
	if g.featsOK {
		return
	}
	g.BuildIndexes()
	in := make([]int, g.NumUsers)
	out := make([]int, g.NumUsers)
	for _, f := range g.Friends {
		out[f.U]++
		in[f.V]++
	}
	retweets := make([]int, g.NumUsers)
	for _, e := range g.Diffs {
		retweets[g.Docs[e.I].User]++
	}
	g.popularity = make([]float64, g.NumUsers)
	g.activeness = make([]float64, g.NumUsers)
	for u := 0; u < g.NumUsers; u++ {
		g.popularity[u] = math.Log1p(ratio(in[u], out[u]))
		g.activeness[u] = math.Log1p(ratio(retweets[u], len(g.userDocs[u])))
	}
	g.featsOK = true
}

func ratio(num, den int) float64 {
	if den == 0 {
		return float64(num)
	}
	return float64(num) / float64(den)
}

// Popularity returns user u's popularity feature.
func (g *Graph) Popularity(u int) float64 {
	g.buildFeatures()
	return g.popularity[u]
}

// Activeness returns user u's activeness feature.
func (g *Graph) Activeness(u int) float64 {
	g.buildFeatures()
	return g.activeness[u]
}

// PairFeatures fills dst (length FeatureDim) with f_uv = [pop(u), act(u),
// pop(v), act(v), 1] and returns it; if dst is nil a new slice is
// allocated.
func (g *Graph) PairFeatures(dst []float64, u, v int) []float64 {
	g.buildFeatures()
	if dst == nil {
		dst = make([]float64, FeatureDim)
	}
	dst[0] = g.popularity[u]
	dst[1] = g.activeness[u]
	dst[2] = g.popularity[v]
	dst[3] = g.activeness[v]
	dst[4] = 1
	return dst
}

// RawPopularity returns |Followers(u)|/|Followees(u)| without the log
// transform; Fig. 5(a)'s case study plots the raw ratio.
func (g *Graph) RawPopularity(u int) float64 {
	g.BuildIndexes()
	in, out := 0, 0
	for _, f := range g.Friends {
		if int(f.U) == u {
			out++
		}
		if int(f.V) == u {
			in++
		}
	}
	return ratio(in, out)
}

// TimeBuckets maps each document's timestamp into nb equal-width buckets
// spanning [minTime, maxTime] and returns the per-document bucket ids plus
// the bucket count actually used (1 if all timestamps coincide). The
// topic-popularity factor n_tz counts topic assignments per bucket.
func (g *Graph) TimeBuckets(nb int) ([]int, int) {
	if nb < 1 {
		nb = 1
	}
	if len(g.Docs) == 0 {
		return nil, 1
	}
	minT, maxT := g.Docs[0].Time, g.Docs[0].Time
	for _, d := range g.Docs[1:] {
		if d.Time < minT {
			minT = d.Time
		}
		if d.Time > maxT {
			maxT = d.Time
		}
	}
	buckets := make([]int, len(g.Docs))
	if maxT == minT {
		return buckets, 1
	}
	span := float64(maxT - minT)
	for i, d := range g.Docs {
		b := int(float64(d.Time-minT) / span * float64(nb))
		if b >= nb {
			b = nb - 1
		}
		buckets[i] = b
	}
	return buckets, nb
}
