// DBLP citation prediction: the Sect. 5 community-aware diffusion
// application on a citation network — given a new paper, which authors
// will cite it? — plus the Fig. 5 factor case study showing how the three
// diffusion factors (community, topic popularity, individual preference)
// contribute to a prediction.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/socialgraph"
	"repro/internal/synth"
)

func main() {
	log.SetFlags(0)

	cfg := synth.DBLPLike(500, 9)
	g, _ := synth.Generate(cfg)
	vocab := synth.BuildVocabulary(cfg)

	model, _, err := core.Train(g, core.Config{
		NumCommunities: 20,
		NumTopics:      25,
		EMIters:        20,
		Workers:        0,
		Rho:            0.05,
		Seed:           5,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Pick a frequently cited paper and rank candidate citing authors.
	cited := mostCitedDoc(g)
	fmt.Printf("paper %d (by author %d):", cited, g.Docs[cited].User)
	for _, w := range g.Docs[cited].Words {
		fmt.Printf(" %s", vocab.Word(int(w)))
	}
	fmt.Println()

	type cand struct {
		u int
		p float64
	}
	var cands []cand
	for u := 0; u < g.NumUsers; u += 7 { // a sample of candidate authors
		if int32(u) == g.Docs[cited].User {
			continue
		}
		cands = append(cands, cand{u, model.DiffusionProb(g, u, cited, model.DocBucket[cited])})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].p > cands[j].p })
	fmt.Println("\nmost likely citing authors:")
	for i := 0; i < 5; i++ {
		fmt.Printf("  author %4d  p=%.3f\n", cands[i].u, cands[i].p)
	}

	// Factor decomposition for the top candidate (the Fig. 5 case study in
	// miniature): evaluate the Eq. 5 logit with factors toggled.
	u := cands[0].u
	v := int(g.Docs[cited].User)
	pz := model.DocTopicDist(g.Docs[cited].Words, v)
	z := argmax(pz)
	b := model.DocBucket[cited]
	feats := g.PairFeatures(nil, u, v)
	full := model.DiffusionLogitTopic(u, v, z, b, feats)
	noInd := model.DiffusionLogitTopic(u, v, z, b, nil)
	noPop := model.DiffusionLogitTopic(u, v, z, -1, feats)
	fmt.Printf("\nfactor decomposition for author %d citing paper %d (topic T%d):\n", u, cited, z)
	fmt.Printf("  full logit              %+.3f\n", full)
	fmt.Printf("  individual contribution %+.3f\n", full-noInd)
	fmt.Printf("  popularity contribution %+.3f\n", full-noPop)
	fmt.Printf("  community contribution  %+.3f\n", noInd+noPop-full)

	// Held-in sanity AUC: observed citations vs random pairs.
	var pos, neg []float64
	for k, e := range g.Diffs {
		if k%10 == 0 {
			pos = append(pos, model.DiffusionProb(g, int(g.Docs[e.I].User), int(e.J), model.DocBucket[e.I]))
		}
	}
	for _, p := range eval.SampleNegativeDocPairs(g, len(pos), 1) {
		neg = append(neg, model.DiffusionProb(g, int(g.Docs[p[0]].User), p[1], model.DocBucket[p[0]]))
	}
	fmt.Printf("\ncitation prediction AUC (observed vs random pairs): %.3f\n", eval.AUC(pos, neg))
}

// mostCitedDoc returns the document with the most incoming diffusion
// links.
func mostCitedDoc(g *socialgraph.Graph) int {
	in := make([]int, len(g.Docs))
	for _, e := range g.Diffs {
		in[e.J]++
	}
	best := 0
	for d := range in {
		if in[d] > in[best] {
			best = d
		}
	}
	return best
}

// argmax returns the index of the largest element.
func argmax(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}
