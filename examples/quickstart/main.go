// Quickstart: generate a small social graph, jointly detect and profile
// its communities with CPD, and read the three outputs the paper defines —
// membership π (Definition 3), content profile θ (Definition 4) and
// diffusion profile η (Definition 5).
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/synth"
)

func main() {
	log.SetFlags(0)

	// A Twitter-flavoured synthetic network: users post documents, follow
	// each other, and retweet. Attribute tokens (profile fields) enable the
	// attribute-profile extension.
	cfg := synth.TwitterLike(400, 42)
	cfg.AttrVocab = 60
	cfg.AttrsPerUserMean = 3
	g, _ := synth.Generate(cfg)
	vocab := synth.BuildVocabulary(cfg)
	st := g.Stats()
	fmt.Printf("graph: %d users, %d friendship links, %d diffusion links, %d docs\n",
		st.Users, st.FriendLinks, st.DiffLinks, st.Docs)

	// Joint community profiling and detection (Sect. 3-4).
	model, diag, err := core.Train(g, core.Config{
		NumCommunities:  20,
		NumTopics:       25,
		EMIters:         20,
		Workers:         1,
		Rho:             0.05,
		Seed:            7,
		ModelAttributes: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained in %.1fs\n\n", diag.EStepSeconds+diag.MStepSeconds)

	// Community membership: a user's distribution over communities.
	u := 0
	fmt.Printf("user %d top communities:", u)
	for _, c := range model.TopCommunities(u, 3) {
		fmt.Printf(" c%02d(%.2f)", c, model.Pi.At(u, c))
	}
	fmt.Println()

	// Content profile: what each community talks about.
	fmt.Println("\ncontent profiles (top topic words per community):")
	for c := 0; c < 5; c++ {
		fmt.Printf("  c%02d: %s\n", c, apps.CommunityLabel(model, vocab, c, 4))
	}

	// Diffusion profile: who diffuses whom, on what.
	fmt.Println("\nstrongest community-to-community diffusion (topic aggregated):")
	dg := apps.BuildDiffusionGraph(model, vocab, -1)
	for i, e := range dg.Edges {
		if i >= 5 {
			break
		}
		fmt.Printf("  c%02d -> c%02d  strength %.4f\n", e.From, e.To, e.Strength)
	}

	// Attribute profiles (the implemented future-work extension): the
	// attributes a community's members share.
	fmt.Println("\nattribute profiles (top attribute ids per community):")
	for c := 0; c < 3; c++ {
		fmt.Printf("  c%02d: %v\n", c, model.TopAttributes(c, 3))
	}

	// Application one-liners.
	fmt.Println("\ncommunity-aware diffusion: probability user 1 retweets doc 0:",
		fmt.Sprintf("%.3f", model.DiffusionProb(g, 1, 0, model.DocBucket[0])))
	ranked := apps.RankCommunities(model, []int32{0})
	fmt.Printf("profile-driven ranking for word %q: c%02d (score %.4f)\n",
		vocab.Word(0), ranked[0].Community, ranked[0].Score)
}
