// Visualization: export the Fig. 7 profile-driven community diffusion
// graphs — topic-aggregated, a general topic and a specialized topic — as
// Graphviz DOT files, and print the openness observation of Sect. 6.3.3.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/synth"
)

func main() {
	log.SetFlags(0)

	cfg := synth.DBLPLike(500, 17)
	g, _ := synth.Generate(cfg)
	vocab := synth.BuildVocabulary(cfg)

	model, _, err := core.Train(g, core.Config{
		NumCommunities: 20,
		NumTopics:      25,
		EMIters:        20,
		Workers:        0,
		Rho:            0.05,
		Seed:           23,
	})
	if err != nil {
		log.Fatal(err)
	}

	outDir := "viz-out"
	if len(os.Args) > 1 {
		outDir = os.Args[1]
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		log.Fatal(err)
	}

	// A general vs a specialized topic, by how many communities discuss
	// each above the uniform level.
	breadth := make([]int, model.Cfg.NumTopics)
	uniform := 1 / float64(model.Cfg.NumTopics)
	for z := 0; z < model.Cfg.NumTopics; z++ {
		for c := 0; c < model.Cfg.NumCommunities; c++ {
			if model.Theta.At(c, z) > uniform {
				breadth[z]++
			}
		}
	}
	general, special := 0, 0
	for z := range breadth {
		if breadth[z] > breadth[general] {
			general = z
		}
		if breadth[z] > 0 && (breadth[special] == 0 || breadth[z] < breadth[special]) {
			special = z
		}
	}

	for _, spec := range []struct {
		file string
		z    int
	}{
		{"diffusion-aggregated.dot", -1},
		{fmt.Sprintf("diffusion-general-T%d.dot", general), general},
		{fmt.Sprintf("diffusion-specialized-T%d.dot", special), special},
	} {
		dg := apps.BuildDiffusionGraph(model, vocab, spec.z)
		path := filepath.Join(outDir, spec.file)
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := dg.WriteDOT(f); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("wrote %s (%d edges)\n", path, len(dg.Edges))
	}

	open := apps.Openness(model)
	most, least := 0, 0
	for c := range open {
		if open[c] > open[most] {
			most = c
		}
		if open[c] < open[least] {
			least = c
		}
	}
	fmt.Printf("\nmost open community:   c%02d (%d inter-community flows) — %s\n",
		most, open[most], apps.CommunityLabel(model, vocab, most, 3))
	fmt.Printf("most closed community: c%02d (%d inter-community flows) — %s\n",
		least, open[least], apps.CommunityLabel(model, vocab, least, 3))
}
