// Twitter campaign targeting: the Sect. 1 motivating scenario — a company
// wants to find the communities most likely to retweet about its product,
// so it can target a campaign. This is profile-driven community ranking
// (Eq. 19) plus a look at each community's content and diffusion profile
// to sanity-check the recommendation.
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/socialgraph"
	"repro/internal/synth"
)

func main() {
	log.SetFlags(0)

	cfg := synth.TwitterLike(600, 11)
	g, _ := synth.Generate(cfg)
	vocab := synth.BuildVocabulary(cfg)

	model, _, err := core.Train(g, core.Config{
		NumCommunities: 20,
		NumTopics:      25,
		EMIters:        20,
		Workers:        0, // all cores
		Rho:            0.05,
		Seed:           3,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The "product" is content about a campaign keyword; any vocabulary
	// word works — here the first word of the most diffused topic block.
	campaignWord := mostDiffusedWord(g)
	fmt.Printf("campaign keyword: %q\n\n", vocab.Word(int(campaignWord)))

	ranked := apps.RankCommunities(model, []int32{campaignWord})
	members := model.CommunityMembers(5)
	fmt.Println("top 5 communities to target:")
	for i := 0; i < 5 && i < len(ranked); i++ {
		r := ranked[i]
		fmt.Printf("%2d. c%02d  score=%.5f  ~%d reachable users  talks about: %s\n",
			i+1, r.Community, r.Score, len(members[r.Community]),
			apps.CommunityLabel(model, vocab, r.Community, 4))
	}

	// Check the winner's diffusion profile: does it actually retweet on
	// the campaign topic, and from whom?
	best := ranked[0].Community
	fmt.Printf("\nwho community c%02d diffuses (top 5 topic-specific flows):\n", best)
	count := 0
	for c2 := 0; c2 < model.Cfg.NumCommunities && count < 5; c2++ {
		tops := apps.TopDiffusionTopics(model, best, c2, 1)
		if len(tops) == 0 || tops[0].Score < 1e-3 {
			continue
		}
		fmt.Printf("  c%02d -> c%02d on T%d (strength %.4f)\n", best, c2, tops[0].Community, tops[0].Score)
		count++
	}
}

// mostDiffusedWord returns the vocabulary word occurring in the most
// retweets (diffusing documents).
func mostDiffusedWord(g *socialgraph.Graph) int32 {
	freq := make(map[int32]int)
	for _, e := range g.Diffs {
		for _, w := range g.Docs[e.I].Words {
			freq[w]++
		}
	}
	var best int32
	bestN := -1
	for w, n := range freq {
		if n > bestN || (n == bestN && w < best) {
			best, bestN = w, n
		}
	}
	return best
}
