package repro

// Benchmarks for the sharded snapshot subsystem (internal/shard):
// splitting a serving-scale v2 snapshot into a shard group and joining
// it back (the publish-side cost), and membership queries against an
// engine serving one shard of that group vs the full snapshot (the
// per-replica footprint the format trades for).

import (
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/serve"
	"repro/internal/shard"
	"repro/internal/store"
)

// BenchmarkShardSplitJoin measures turning a full v2 snapshot into a
// 3-shard group (global + shard files + manifest) and reassembling it —
// both pure byte-window operations over the mapped source.
func BenchmarkShardSplitJoin(b *testing.B) {
	m := serveBenchModel(b)
	dir := b.TempDir()
	src := filepath.Join(dir, "full.v2.snap")
	if err := store.SaveV2(src, m); err != nil {
		b.Fatal(err)
	}
	fi := int64(0)
	if _, size, err := store.FileSections(src); err == nil {
		fi = size
	}
	b.Run("split", func(b *testing.B) {
		b.SetBytes(fi)
		for i := 0; i < b.N; i++ {
			if _, err := shard.Split(src, dir, uint64(i)+1, shard.SplitOptions{Shards: 3}); err != nil {
				b.Fatal(err)
			}
		}
	})
	if _, err := shard.Split(src, dir, 1, shard.SplitOptions{Shards: 3}); err != nil {
		b.Fatal(err)
	}
	b.Run("join", func(b *testing.B) {
		b.SetBytes(fi)
		for i := 0; i < b.N; i++ {
			if err := shard.Join(dir, 1, filepath.Join(dir, "joined.v2.snap")); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkShardedMembership compares membership queries against a full
// mapped snapshot with the same queries against an engine serving one
// shard of the 3-way split — same answers (for owned users), ~1/3 the
// user payload mapped.
func BenchmarkShardedMembership(b *testing.B) {
	m := serveBenchModel(b)
	dir := b.TempDir()
	src := filepath.Join(dir, "full.v2.snap")
	if err := store.SaveV2(src, m); err != nil {
		b.Fatal(err)
	}
	man, err := shard.Split(src, dir, 1, shard.SplitOptions{Shards: 3})
	if err != nil {
		b.Fatal(err)
	}
	fullSize := int64(0)
	if _, size, err := store.FileSections(src); err == nil {
		fullSize = size
	}

	b.Run("full", func(b *testing.B) {
		mm, err := store.Open(src)
		if err != nil {
			b.Fatal(err)
		}
		e := serve.NewMulti(serve.Options{Mmap: true})
		defer e.Close()
		e.SwapMapped(serve.DefaultSnapshot, mm, nil)
		lo, hi := man.Ranges[1].UserLo, man.Ranges[1].UserHi
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.Membership(lo+i%(hi-lo), 5); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(fullSize), "mapped-bytes")
	})
	b.Run(fmt.Sprintf("shard-1-of-%d", man.Shards), func(b *testing.B) {
		g, err := shard.OpenGroup(dir, man, 1)
		if err != nil {
			b.Fatal(err)
		}
		e := serve.NewMulti(serve.Options{Mmap: true})
		defer e.Close()
		e.PromoteShardGroup(serve.DefaultSnapshot, g, nil, 1)
		lo, hi := man.Ranges[1].UserLo, man.Ranges[1].UserHi
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.Membership(lo+i%(hi-lo), 5); err != nil {
				b.Fatal(err)
			}
		}
		// After the loop: ResetTimer clears custom metrics, so the mapped
		// footprint is reported here.
		b.ReportMetric(float64(g.MappedBytes), "mapped-bytes")
	})
}
