package repro

// End-to-end integration tests: the full pipeline the cmd/ tools wire
// together — generate → serialize → reload → train → save → load → predict
// → rank → visualize — exercised through the library so every seam between
// packages is covered, including the failure paths.

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/eval"
	"repro/internal/scenario"
	"repro/internal/serve"
	"repro/internal/socialgraph"
	"repro/internal/store"
	"repro/internal/synth"
)

func TestFullPipeline(t *testing.T) {
	dir := t.TempDir()

	// 1. Generate and persist a dataset + vocabulary (cpd-synth).
	cfg := synth.DBLPLike(250, 123)
	cfg.AttrVocab = 40
	cfg.AttrsPerUserMean = 2
	g, _ := synth.Generate(cfg)
	vocab := synth.BuildVocabulary(cfg)

	graphPath := filepath.Join(dir, "g.graph")
	f, err := os.Create(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	vocabPath := filepath.Join(dir, "g.vocab")
	vf, err := os.Create(vocabPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vocab.WriteTo(vf); err != nil {
		t.Fatal(err)
	}
	vf.Close()

	// 2. Reload from disk (cpd-train's input path) and check fidelity.
	rf, err := os.Open(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := socialgraph.Read(rf)
	rf.Close()
	if err != nil {
		t.Fatal(err)
	}
	if g2.Stats() != g.Stats() {
		t.Fatalf("reloaded stats %+v != original %+v", g2.Stats(), g.Stats())
	}
	if g2.NumAttrs != g.NumAttrs {
		t.Fatalf("attributes lost: %d != %d", g2.NumAttrs, g.NumAttrs)
	}

	// 3. Train with the attribute extension and persist the model.
	model, diag, err := core.Train(g2, core.Config{
		NumCommunities: 15, NumTopics: 20, EMIters: 12, Workers: 2,
		Rho: 1.0 / 15, Seed: 9, ModelAttributes: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if diag.EStepSeconds <= 0 || len(diag.SweepSeconds) == 0 {
		t.Fatalf("diagnostics empty: %+v", diag)
	}
	modelPath := filepath.Join(dir, "model.json")
	mf, err := os.Create(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := model.Save(mf); err != nil {
		t.Fatal(err)
	}
	mf.Close()

	// 4. Reload the model (cpd-rank / cpd-viz path).
	lf, err := os.Open(modelPath)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := core.Load(lf)
	lf.Close()
	if err != nil {
		t.Fatal(err)
	}

	// 5. Diffusion prediction quality survives the round trip.
	var pos, neg []float64
	for k, e := range g2.Diffs {
		if k%4 == 0 {
			pos = append(pos, loaded.DiffusionProb(g2, int(g2.Docs[e.I].User), int(e.J), loaded.DocBucket[e.I]))
		}
	}
	for _, p := range eval.SampleNegativeDocPairs(g2, len(pos), 5) {
		neg = append(neg, loaded.DiffusionProb(g2, int(g2.Docs[p[0]].User), p[1], loaded.DocBucket[p[0]]))
	}
	if auc := eval.AUC(pos, neg); auc < 0.62 {
		t.Fatalf("end-to-end diffusion AUC = %v", auc)
	}

	// 6. Text-query ranking through the vocabulary (cpd-rank).
	pipeline := corpus.Pipeline{MinDocTokens: 1}
	ranked, err := apps.RankCommunitiesText(loaded, vocab, pipeline, vocab.Word(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 15 {
		t.Fatalf("ranking returned %d communities", len(ranked))
	}

	// 7. Visualization export (cpd-viz).
	dg := apps.BuildDiffusionGraph(loaded, vocab, -1)
	var dot bytes.Buffer
	if err := dg.WriteDOT(&dot); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dot.String(), "digraph diffusion") {
		t.Fatal("DOT export malformed")
	}
	var js bytes.Buffer
	if err := dg.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}

	// 8. Attribute profiles made it through everything.
	if loaded.Xi == nil {
		t.Fatal("attribute profiles lost through the pipeline")
	}
	if tops := loaded.TopAttributes(0, 3); len(tops) != 3 {
		t.Fatalf("TopAttributes = %v", tops)
	}
}

// TestServingPipeline covers the online read path the serving cmds wire
// together: train → binary snapshot (cpd-train) → serve.Engine
// (cpd-serve) → rank/membership/fold-in queries → hot-swap reload from a
// JSON model (format compatibility both ways).
func TestServingPipeline(t *testing.T) {
	dir := t.TempDir()
	cfg := synth.TwitterLike(120, 31)
	g, _ := synth.Generate(cfg)
	vocab := synth.BuildVocabulary(cfg)
	model, _, err := core.Train(g, core.Config{
		NumCommunities: 8, NumTopics: 10, EMIters: 6, Workers: 2, Seed: 4, Rho: 0.125,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Snapshot to disk in the binary format, reload, serve.
	snapPath := filepath.Join(dir, "model.snap")
	if err := store.Save(snapPath, model); err != nil {
		t.Fatal(err)
	}
	loaded, err := store.LoadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	engine := serve.New(loaded, vocab, serve.Options{})
	defer engine.Close()

	res, err := engine.RankText(vocab.Word(5), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 4 || res.Version != 1 {
		t.Fatalf("rank result %+v", res)
	}
	mem, err := engine.Membership(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	if mem.Communities[0].Community != model.TopCommunity(7) {
		t.Fatalf("served membership disagrees with the trained model")
	}
	fold, err := engine.FoldIn(&serve.FoldInRequest{
		Docs: [][]int32{g.Docs[0].Words, g.Docs[1].Words}, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(fold.Pi) != 8 {
		t.Fatalf("fold-in pi %v", fold.Pi)
	}

	// Hot-swap to a JSON-format model of a different shape.
	model2, _, err := core.Train(g, core.Config{
		NumCommunities: 6, NumTopics: 8, EMIters: 4, Workers: 1, Seed: 5, Rho: 0.125,
	})
	if err != nil {
		t.Fatal(err)
	}
	jsonPath := filepath.Join(dir, "model2.json")
	jf, err := os.Create(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := model2.Save(jf); err != nil {
		t.Fatal(err)
	}
	if err := jf.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Reload(jsonPath, ""); err != nil {
		t.Fatal(err)
	}
	v := engine.View()
	if v.Version != 2 || v.Model.Cfg.NumCommunities != 6 {
		t.Fatalf("hot-swap failed: version %d |C|=%d", v.Version, v.Model.Cfg.NumCommunities)
	}
	if got := len(engine.Communities()); got != 6 {
		t.Fatalf("served %d communities after swap", got)
	}
}

func TestPipelineFailureInjection(t *testing.T) {
	// Corrupt graph file.
	if _, err := socialgraph.Read(strings.NewReader("graph 2 5\ndoc 0 1 99\n")); err == nil {
		t.Fatal("out-of-range word accepted")
	}
	// Model file truncation.
	g, _ := synth.Generate(synth.TwitterLike(80, 7))
	m, _, err := core.Train(g, core.Config{
		NumCommunities: 5, NumTopics: 6, EMIters: 3, Workers: 1, Seed: 1, Rho: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	truncated := buf.Bytes()[:buf.Len()/2]
	if _, err := core.Load(bytes.NewReader(truncated)); err == nil {
		t.Fatal("truncated model accepted")
	}
	// Inconsistent graph caught before training.
	bad := &socialgraph.Graph{NumUsers: 2, NumWords: 3,
		Docs:  []socialgraph.Doc{{User: 0, Words: []int32{0}}},
		Diffs: []socialgraph.DiffLink{{I: 0, J: 5}},
	}
	if _, _, err := core.Train(bad, core.Config{NumCommunities: 2, NumTopics: 2}); err == nil {
		t.Fatal("dangling diffusion link accepted")
	}
}

func TestSubsampledTrainingStillWorks(t *testing.T) {
	// The Fig. 10 path: training must stay healthy on subsampled graphs.
	g, _ := synth.Generate(synth.TwitterLike(300, 55))
	sub := socialgraph.Subsample(g, 0.4, 9)
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	_, diag, err := core.Train(sub, core.Config{
		NumCommunities: 10, NumTopics: 10, EMIters: 4, Workers: 2, Seed: 3, Rho: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(diag.WorkerActual) != 2 {
		t.Fatalf("parallel diagnostics missing: %+v", diag)
	}
}

// TestScenarioHarnessPipeline exercises the workload harness through its
// public seam the way CI's scenario job does: one preset runs the full
// train→snapshot→serve→query regression (with the HTTP pass), its metrics
// match the committed golden file, and the load generator then replays a
// mixed closed-loop workload against a served model without errors.
func TestScenarioHarnessPipeline(t *testing.T) {
	p, err := scenario.Lookup("citation-web")
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := scenario.Run(p, scenario.RunOptions{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	golden, err := scenario.ReadGolden(filepath.Join("internal", "scenario", scenario.GoldenPath(p.Name)))
	if err != nil {
		t.Fatal(err)
	}
	if err := scenario.CompareGolden(metrics, golden); err != nil {
		t.Fatal(err)
	}

	// Load-generate against a model trained on the same bundle.
	b, err := scenario.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	model, _, err := core.Train(b.Graph, p.Train)
	if err != nil {
		t.Fatal(err)
	}
	engine := serve.New(model, b.Vocab, serve.Options{})
	defer engine.Close()
	rep, err := scenario.RunLoad(scenario.EngineTarget{Engine: engine}, scenario.LoadOptions{
		Space: scenario.SpaceFromModel(model), Requests: 500, Concurrency: 4, Seed: 13,
		FoldInSweeps: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 500 || rep.Errors != 0 {
		t.Fatalf("load run: %d requests, %d errors", rep.Requests, rep.Errors)
	}
	if rep.QPS <= 0 {
		t.Fatalf("no throughput measured: %+v", rep)
	}
	for op, s := range rep.Ops {
		if s.P50 > s.P99 || s.P99 > s.Max {
			t.Fatalf("%s latency percentiles not monotone: %+v", op, s)
		}
	}
}
