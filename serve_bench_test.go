package repro

// Benchmarks for the online serving subsystem (internal/store +
// internal/serve): snapshot loading, inverted-index ranking against the
// full-scan baseline, and fold-in inference. The model shape (|C|=100,
// |W|=50k) is the serving-scale configuration the subsystem is sized for —
// far larger than the training benchmarks' models, and assembled directly
// (serve.SyntheticModel) so the benchmarks measure serving, not training.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/quality"
	"repro/internal/scenario"
	"repro/internal/serve"
	"repro/internal/socialgraph"
	"repro/internal/store"
)

// serveBenchModel is the shared serving-scale model: |C|=100, |Z|=50,
// |W|=50k, 500 users.
func serveBenchModel(b *testing.B) *core.Model {
	b.Helper()
	return serve.SyntheticModel(500, 100, 50, 50000, 2017)
}

// BenchmarkServeRank compares Eq. 19 ranking through serve.Engine's
// inverted index against the full K×|Z| scan of
// core.Model.RankCommunities, on the same model and queries — and the
// heap-backed engine against one serving the same model zero-copy from a
// memory-mapped v2 snapshot (the mapped-vs-heap serving comparison).
func BenchmarkServeRank(b *testing.B) {
	m := serveBenchModel(b)
	e := serve.New(m, nil, serve.Options{})
	defer e.Close()
	queries := make([][]int32, 64)
	for i := range queries {
		queries[i] = []int32{int32(i * 701 % 50000), int32(i * 337 % 50000), int32(i * 97 % 50000)}
	}
	b.Run("inverted-index", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := e.Rank(queries[i%len(queries)], 10); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("inverted-index-mapped", func(b *testing.B) {
		path := filepath.Join(b.TempDir(), "bench.v2.snap")
		if err := store.SaveV2(path, m); err != nil {
			b.Fatal(err)
		}
		mm, err := store.Open(path)
		if err != nil {
			b.Fatal(err)
		}
		me := serve.NewMulti(serve.Options{Mmap: true})
		defer me.Close()
		me.SwapMapped(serve.DefaultSnapshot, mm, nil)
		// Pre-warm: fault every page the queries touch into the page cache
		// before the clock starts. The first pass over a cold mapping
		// measures disk/page-fault latency, not ranking — and leaked that
		// noise into the timed iterations here before.
		for _, q := range queries {
			if _, err := me.Rank(q, 10); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := me.Rank(queries[i%len(queries)], 10); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full-scan-baseline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.RankCommunities(queries[i%len(queries)])
		}
	})
}

// BenchmarkFoldIn measures fold-in inference of one unseen user (5
// documents, 3 friends, 20 Gibbs sweeps) against the serving-scale model.
func BenchmarkFoldIn(b *testing.B) {
	m := serveBenchModel(b)
	e := serve.New(m, nil, serve.Options{})
	defer e.Close()
	docs := make([][]int32, 5)
	for d := range docs {
		words := make([]int32, 8)
		for w := range words {
			words[w] = int32((d*131 + w*977) % 50000)
		}
		docs[d] = words
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := e.FoldIn(&serve.FoldInRequest{
			Docs:    docs,
			Friends: []int32{1, 2, 3},
			Seed:    uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotLoad compares loading the serving-scale model across
// every snapshot path: the v1 binary copy load, the legacy JSON load, the
// v2 copy load, and the v2 memory-mapped open (store.Open). Every
// sub-benchmark reports allocations, and the v1/v2 pair plus mmap report
// an rss-delta metric (process resident-set growth across the run) — the
// mapped open is the one whose heap and RSS stay O(1) in the matrix
// payload (matrices alias the mapping; only caches allocate).
func BenchmarkSnapshotLoad(b *testing.B) {
	m := serveBenchModel(b)
	var bin, js, v2 bytes.Buffer
	if err := store.Encode(&bin, m); err != nil {
		b.Fatal(err)
	}
	if err := m.Save(&js); err != nil {
		b.Fatal(err)
	}
	if err := store.EncodeV2(&v2, m); err != nil {
		b.Fatal(err)
	}
	withRSS := func(fn func(b *testing.B)) func(b *testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			rss0 := serve.ProcessRSS()
			fn(b)
			if d := serve.ProcessRSS() - rss0; d > 0 {
				b.ReportMetric(float64(d), "rss-delta-B")
			} else {
				b.ReportMetric(0, "rss-delta-B")
			}
		}
	}
	b.Run(fmt.Sprintf("binary-%dMB", bin.Len()>>20), withRSS(func(b *testing.B) {
		b.SetBytes(int64(bin.Len()))
		for i := 0; i < b.N; i++ {
			if _, err := store.Load(bytes.NewReader(bin.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	}))
	b.Run(fmt.Sprintf("json-%dMB", js.Len()>>20), withRSS(func(b *testing.B) {
		b.SetBytes(int64(js.Len()))
		for i := 0; i < b.N; i++ {
			if _, err := store.Load(bytes.NewReader(js.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	}))
	b.Run(fmt.Sprintf("v2-copy-%dMB", v2.Len()>>20), withRSS(func(b *testing.B) {
		b.SetBytes(int64(v2.Len()))
		for i := 0; i < b.N; i++ {
			if _, err := store.Load(bytes.NewReader(v2.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	}))
	b.Run(fmt.Sprintf("v2-mmap-%dMB", v2.Len()>>20), withRSS(func(b *testing.B) {
		path := filepath.Join(b.TempDir(), "bench.v2.snap")
		if err := os.WriteFile(path, v2.Bytes(), 0o644); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(v2.Len()))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mm, err := store.Open(path)
			if err != nil {
				b.Fatal(err)
			}
			mm.Close()
		}
	}))
}

// BenchmarkQualityMetrics measures what the quality observability layer
// costs: scoring one published generation with the full structural report
// (quality.FromModel — modularity, coverage, conductance, size
// distribution, drift vs the previous generation) on the serving-scale
// model over a 10-edges-per-user friendship graph, and the parallel
// label-propagation baseline partition of the same graph. The score cost
// bounds the publish-path overhead of -quality-every 1; PLP is the
// comparison row's cost.
func BenchmarkQualityMetrics(b *testing.B) {
	m := serveBenchModel(b)
	friends := make([]socialgraph.FriendLink, 0, m.NumUsers*10)
	for u := 0; u < m.NumUsers; u++ {
		for k := 0; k < 10; k++ {
			v := (u*7 + k*131 + 1) % m.NumUsers
			if v != u {
				friends = append(friends, socialgraph.FriendLink{U: int32(u), V: int32(v)})
			}
		}
	}
	prev := quality.Assignments(m)
	b.Run("score", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			quality.FromModel(m, friends, prev)
		}
	})
	b.Run("plp", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			baselines.PLP(m.NumUsers, friends, baselines.PLPOptions{Seed: 7})
		}
	})
}

// BenchmarkLoadGenMixed pushes the default mixed query workload through
// the serving engine at full closed-loop pressure — the root traffic
// baseline. One benchmark iteration is one complete request; workers
// equal GOMAXPROCS.
func BenchmarkLoadGenMixed(b *testing.B) {
	m := serveBenchModel(b)
	e := serve.New(m, nil, serve.Options{})
	defer e.Close()
	rep, err := scenario.RunLoad(scenario.EngineTarget{Engine: e}, scenario.LoadOptions{
		Space:        scenario.SpaceFromModel(m),
		Requests:     b.N,
		Concurrency:  runtime.GOMAXPROCS(0),
		Seed:         7,
		FoldInSweeps: 5,
	})
	if err != nil {
		b.Fatal(err)
	}
	if rep.Errors > 0 {
		b.Fatalf("%d load errors: %+v", rep.Errors, rep.Ops)
	}
	b.ReportMetric(rep.QPS, "qps")
}
