// Command cpd-lens serves the SocialLens companion system (the paper's
// footnote 1): an interactive HTTP service for browsing communities by
// content and interaction — community profiles, profile-driven ranking and
// the Fig. 7 diffusion graphs. The browser UI runs on a serve.Engine, so
// the model can be hot-swapped without restarting (see cmd/cpd-serve for
// the headless API, which shares the engine design).
//
// Usage:
//
//	cpd-lens -model model.snap -vocab data.vocab -addr :8080
//	cpd-lens -demo               # train on a synthetic network and serve it
//
// -model accepts both the binary snapshot format (internal/store) and the
// legacy JSON format. The server shuts down gracefully on SIGINT/SIGTERM,
// draining in-flight requests.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/lens"
	"repro/internal/serve"
	"repro/internal/store"
	"repro/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cpd-lens: ")
	var (
		modelPath = flag.String("model", "", "trained model file (binary snapshot or JSON)")
		vocabPath = flag.String("vocab", "", "vocabulary file")
		addr      = flag.String("addr", ":8080", "listen address")
		demo      = flag.Bool("demo", false, "train a demo model on synthetic data and serve it")
	)
	flag.Parse()

	var model *core.Model
	var vocab *corpus.Vocabulary
	switch {
	case *demo:
		cfg := synth.TwitterLike(500, 42)
		g, _ := synth.Generate(cfg)
		if err := g.Validate(); err != nil {
			log.Fatalf("demo graph generation produced an invalid graph: %v", err)
		}
		fmt.Println("training demo model on a synthetic Twitter-like network...")
		m, _, err := core.Train(g, core.Config{
			NumCommunities: 20, NumTopics: 25, EMIters: 20, Workers: 0,
			Rho: 0.05, Seed: 7,
		})
		if err != nil {
			log.Fatal(err)
		}
		model = m
		vocab = synth.BuildVocabulary(cfg)
	case *modelPath != "":
		var err error
		model, err = store.LoadFile(*modelPath)
		if err != nil {
			log.Fatal(err)
		}
		if *vocabPath != "" {
			vf, err := corpus.ReadVocabularyFile(*vocabPath)
			if err != nil {
				log.Fatal(err)
			}
			vocab = vf
		}
	default:
		log.Fatal("pass -model (and optionally -vocab), or -demo")
	}

	engine := serve.New(model, vocab, serve.Options{})
	defer engine.Close()
	fmt.Printf("SocialLens listening on %s\n", *addr)
	if err := serve.RunHTTP(*addr, lens.New(engine)); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	fmt.Println("shut down cleanly")
}
