// Command cpd-lens serves the SocialLens companion system (the paper's
// footnote 1): an interactive HTTP service for browsing communities by
// content and interaction — community profiles, profile-driven ranking and
// the Fig. 7 diffusion graphs.
//
// Usage:
//
//	cpd-lens -model model.json -vocab data.vocab -addr :8080
//	cpd-lens -demo               # train on a synthetic network and serve it
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/lens"
	"repro/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cpd-lens: ")
	var (
		modelPath = flag.String("model", "", "trained model file")
		vocabPath = flag.String("vocab", "", "vocabulary file")
		addr      = flag.String("addr", ":8080", "listen address")
		demo      = flag.Bool("demo", false, "train a demo model on synthetic data and serve it")
	)
	flag.Parse()

	var model *core.Model
	var vocab *corpus.Vocabulary
	switch {
	case *demo:
		cfg := synth.TwitterLike(500, 42)
		g, _ := synth.Generate(cfg)
		fmt.Println("training demo model on a synthetic Twitter-like network...")
		m, _, err := core.Train(g, core.Config{
			NumCommunities: 20, NumTopics: 25, EMIters: 20, Workers: 0,
			Rho: 0.05, Seed: 7,
		})
		if err != nil {
			log.Fatal(err)
		}
		model = m
		vocab = synth.BuildVocabulary(cfg)
	case *modelPath != "":
		f, err := os.Open(*modelPath)
		if err != nil {
			log.Fatal(err)
		}
		model, err = core.Load(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		if *vocabPath != "" {
			vf, err := os.Open(*vocabPath)
			if err != nil {
				log.Fatal(err)
			}
			vocab, err = corpus.ReadVocabulary(vf)
			vf.Close()
			if err != nil {
				log.Fatal(err)
			}
		}
	default:
		log.Fatal("pass -model (and optionally -vocab), or -demo")
	}

	fmt.Printf("SocialLens listening on %s\n", *addr)
	log.Fatal(http.ListenAndServe(*addr, lens.New(model, vocab)))
}
