// Command cpd-lens serves the SocialLens companion system (the paper's
// footnote 1): an interactive HTTP service for browsing communities by
// content and interaction — community profiles, profile-driven ranking and
// the Fig. 7 diffusion graphs. The browser UI runs on a serve.Engine, so
// the model can be hot-swapped without restarting (see cmd/cpd-serve for
// the headless API, which shares the engine design).
//
// Usage:
//
//	cpd-lens -model model.snap -vocab data.vocab -addr :8080
//	cpd-lens -demo               # train on a synthetic network and serve it
//	cpd-lens -demo -quality      # print the structural quality table and exit
//
// -model accepts both the binary snapshot format (internal/store) and the
// legacy JSON format. The server shuts down gracefully on SIGINT/SIGTERM,
// draining in-flight requests.
//
// -quality prints the model's structural quality report as a metric-rows ×
// generations table (internal/quality) instead of serving: modularity,
// coverage, conductance, size distribution and — when a graph is at hand
// (-graph, or -demo's synthetic network) — the parallel label-propagation
// baseline as a comparison column. Point it at a running cpd-serve with
// -quality-url to render that server's /api/quality history instead.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"time"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/lens"
	"repro/internal/quality"
	"repro/internal/serve"
	"repro/internal/socialgraph"
	"repro/internal/store"
	"repro/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cpd-lens: ")
	var (
		modelPath  = flag.String("model", "", "trained model file (binary snapshot or JSON)")
		vocabPath  = flag.String("vocab", "", "vocabulary file")
		graphPath  = flag.String("graph", "", "training graph; gives -quality friendship edges to score")
		addr       = flag.String("addr", ":8080", "listen address")
		demo       = flag.Bool("demo", false, "train a demo model on synthetic data and serve it")
		qualityTab = flag.Bool("quality", false, "print the structural quality table and exit instead of serving")
		qualityURL = flag.String("quality-url", "", "render a running server's /api/quality history as a table and exit (e.g. http://localhost:8080)")
	)
	flag.Parse()

	if *qualityURL != "" {
		if err := printRemoteQuality(*qualityURL); err != nil {
			log.Fatal(err)
		}
		return
	}

	var model *core.Model
	var vocab *corpus.Vocabulary
	var graph *socialgraph.Graph
	switch {
	case *demo:
		cfg := synth.TwitterLike(500, 42)
		g, _ := synth.Generate(cfg)
		if err := g.Validate(); err != nil {
			log.Fatalf("demo graph generation produced an invalid graph: %v", err)
		}
		fmt.Println("training demo model on a synthetic Twitter-like network...")
		m, _, err := core.Train(g, core.Config{
			NumCommunities: 20, NumTopics: 25, EMIters: 20, Workers: 0,
			Rho: 0.05, Seed: 7,
		})
		if err != nil {
			log.Fatal(err)
		}
		model = m
		vocab = synth.BuildVocabulary(cfg)
		graph = g
	case *modelPath != "":
		var err error
		model, err = store.LoadFile(*modelPath)
		if err != nil {
			log.Fatal(err)
		}
		if *vocabPath != "" {
			vf, err := corpus.ReadVocabularyFile(*vocabPath)
			if err != nil {
				log.Fatal(err)
			}
			vocab = vf
		}
		if *graphPath != "" {
			f, err := os.Open(*graphPath)
			if err != nil {
				log.Fatal(err)
			}
			if graph, err = socialgraph.Read(f); err != nil {
				f.Close()
				log.Fatal(err)
			}
			f.Close()
		}
	default:
		log.Fatal("pass -model (and optionally -vocab), or -demo")
	}

	if *qualityTab {
		printLocalQuality(model, graph)
		return
	}

	engine := serve.New(model, vocab, serve.Options{})
	defer engine.Close()
	fmt.Printf("SocialLens listening on %s\n", *addr)
	if err := serve.RunHTTP(*addr, lens.New(engine)); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	fmt.Println("shut down cleanly")
}

// printLocalQuality scores the loaded model (with the graph's friendship
// edges when one was given) and prints the metric-rows × generations
// table. With edges, the PLP baseline renders as a comparison column.
func printLocalQuality(model *core.Model, graph *socialgraph.Graph) {
	var friends []socialgraph.FriendLink
	if graph != nil {
		friends = graph.Friends
	}
	reports := []*quality.Report{quality.FromModel(model, friends, nil)}
	if len(friends) > 0 {
		res := baselines.PLP(model.NumUsers, friends, baselines.PLPOptions{Seed: 1})
		plp := quality.Compute(res.Labels, res.Communities, friends, nil)
		plp.Algo = "plp"
		reports = append(reports, plp)
	}
	fmt.Print(quality.Table(reports))
}

// lensClient caps remote fetches: a stalled or half-dead server must
// fail the CLI with a timeout, not hang it forever (http.DefaultClient
// has no timeout at all).
var lensClient = &http.Client{Timeout: 30 * time.Second}

// printRemoteQuality renders a running server's /api/quality history.
func printRemoteQuality(base string) error {
	resp, err := lensClient.Get(base + "/api/quality")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body) // drain so the connection is reusable
		return fmt.Errorf("%s/api/quality answered status %d", base, resp.StatusCode)
	}
	var payload serve.QualityPayload
	if err := json.NewDecoder(resp.Body).Decode(&payload); err != nil {
		return err
	}
	reports := payload.History
	if payload.Baseline != nil {
		reports = append(reports, payload.Baseline)
	}
	fmt.Print(quality.Table(reports))
	return nil
}
