// Command cpd-stream is the offline companion of cpd-serve's live ingest:
// it replays an event journal against a base model snapshot and writes the
// resulting extended model — the backfill path for journals accumulated
// while no server was running, and a debugging lens on journal contents.
//
// Usage:
//
//	# Backfill: apply every journaled event to the base model, publish
//	# per 512-event window, write the final model as a v2 snapshot.
//	cpd-stream -journal events.wal -model base.v2.snap -out final.v2.snap
//
//	# With a delta-Gibbs refinement over the affected users (needs the
//	# base graph).
//	cpd-stream -journal events.wal -model base.v2.snap -graph base.graph \
//	    -gibbs -out final.v2.snap
//
//	# Inspect a journal without touching any model.
//	cpd-stream -journal events.wal -stats
//
//	# Checkpoint + compact a journal after a successful backfill.
//	cpd-stream -journal events.wal -model base.v2.snap -out final.v2.snap -compact
//
// Replay is deterministic: the same journal, base snapshot and flags
// produce a bit-identical output snapshot (see internal/stream's
// replay-equals-batch guarantee).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/serve"
	"repro/internal/socialgraph"
	"repro/internal/store"
	"repro/internal/stream"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cpd-stream: ")
	var (
		journalPath = flag.String("journal", "", "event journal path (required)")
		modelPath   = flag.String("model", "", "base model snapshot (required unless -stats)")
		graphPath   = flag.String("graph", "", "base training graph (enables -gibbs-every)")
		outPath     = flag.String("out", "", "output snapshot path (v2; required unless -stats)")
		foldSweeps  = flag.Int("fold-sweeps", 0, "Gibbs sweeps per fold-in (0 = default)")
		seed        = flag.Uint64("seed", 0, "fold/delta seed base")
		gibbs       = flag.Bool("gibbs", false, "run a delta-Gibbs refinement in the backfill publish (needs -graph)")
		gibbsSweeps = flag.Int("gibbs-sweeps", 2, "EM iterations of the delta-Gibbs refinement")
		workers     = flag.Int("workers", 0, "delta-Gibbs workers (0 = all cores)")
		doCompact   = flag.Bool("compact", false, "checkpoint and compact the journal after a successful backfill")
		statsOnly   = flag.Bool("stats", false, "print journal statistics and exit")
	)
	flag.Parse()
	if *journalPath == "" {
		log.Fatal("-journal is required")
	}
	j, err := stream.OpenJournal(*journalPath, stream.JournalOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer j.Close()

	if *statsOnly {
		counts := map[stream.EventType]int{}
		if err := j.Replay(j.Base(), func(off uint64, ev stream.Event) error {
			counts[ev.Type]++
			return nil
		}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("journal %s: %d events, %d bytes, base %d, watermark %d, tail %d\n",
			*journalPath, j.Events(), j.SizeBytes(), j.Base(), j.Watermark(), j.Tail())
		for _, t := range []stream.EventType{stream.EvAddUser, stream.EvAddEdge, stream.EvAddDoc, stream.EvDiffusion} {
			fmt.Printf("  %-10s %d\n", t, counts[t])
		}
		return
	}
	if *modelPath == "" || *outPath == "" {
		log.Fatal("-model and -out are required (or pass -stats)")
	}
	base, err := store.LoadFile(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	var baseGraph *socialgraph.Graph
	if *graphPath != "" {
		f, err := os.Open(*graphPath)
		if err != nil {
			log.Fatal(err)
		}
		baseGraph, err = socialgraph.Read(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	}
	if *gibbs && baseGraph == nil {
		log.Fatal("-gibbs needs -graph")
	}

	// An in-process engine hosts the base snapshot; the updater folds the
	// whole journal into it as one batch window — deterministic and, in
	// fold-in mode, bit-identical to what incremental live ingest of the
	// same events would have served (replay-equals-batch).
	engine := serve.New(base, nil, serve.Options{})
	defer engine.Close()
	gibbsEvery := 0
	if *gibbs {
		gibbsEvery = 1 // the single backfill publish includes the pass
	}
	u, err := stream.NewUpdater(j, stream.Options{
		Engine:      engine,
		Base:        base,
		FoldSweeps:  *foldSweeps,
		FoldSeed:    *seed,
		GibbsEvery:  gibbsEvery,
		GibbsSweeps: *gibbsSweeps,
		BaseGraph:   baseGraph,
		Workers:     *workers,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer u.Close()

	if _, err := u.Publish(); err != nil {
		log.Fatal(err)
	}
	final := u.Model()
	if err := store.SaveV2(*outPath, final); err != nil {
		log.Fatal(err)
	}
	st := u.Status()
	fmt.Printf("backfilled %d events (%d delta-Gibbs passes): %d -> %d users, %d stream docs\n",
		st.AppliedEvents, st.GibbsPasses, st.BaseUsers, st.Users, st.StreamDocs)
	fmt.Printf("final model written to %s (generation %d)\n", *outPath, st.Generation)
	if *doCompact {
		if err := u.Checkpoint(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("journal checkpointed and compacted to %d bytes\n", j.SizeBytes())
	}
}
