// Command cpd-synth generates a synthetic social graph and writes it —
// plus the themed vocabulary — to disk in the socialgraph text format.
// Datasets come from either a size-parameterized preset (-preset twitter
// or dblp) or a named scenario from the workload harness (-scenario),
// which is exactly the generator path the regression suite trains on.
//
// Usage:
//
//	cpd-synth -preset twitter -users 2000 -seed 42 -out twitter.graph -vocab twitter.vocab
//	cpd-synth -scenario power-law -out pl.graph -vocab pl.vocab
//	cpd-synth -list
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/scenario"
	"repro/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cpd-synth: ")
	var (
		preset   = flag.String("preset", "twitter", "dataset preset: twitter | dblp")
		scenName = flag.String("scenario", "", "generate a named scenario preset instead (see -list)")
		list     = flag.Bool("list", false, "list scenario presets and exit")
		users    = flag.Int("users", 1000, "number of users (-preset only; scenarios fix their own scale)")
		seed     = flag.Uint64("seed", 42, "generator seed (-scenario overrides with its pinned seed unless set)")
		out      = flag.String("out", "", "output graph file (required)")
		vocab    = flag.String("vocab", "", "optional vocabulary output file")
	)
	flag.Parse()
	if *list {
		for _, p := range scenario.All() {
			fmt.Printf("%-16s %s\n", p.Name, p.Description)
		}
		return
	}
	if *out == "" {
		log.Fatal("-out is required")
	}
	var cfg synth.Config
	if *scenName != "" {
		p, err := scenario.Lookup(*scenName)
		if err != nil {
			log.Fatal(err)
		}
		cfg = p.Synth
		// An explicitly set -seed re-seeds the scenario; the default keeps
		// the pinned seed so the CLI reproduces the regression datasets
		// byte for byte.
		if seedSet(flag.CommandLine) {
			cfg.Seed = *seed
		}
	} else {
		switch *preset {
		case "twitter":
			cfg = synth.TwitterLike(*users, *seed)
		case "dblp":
			cfg = synth.DBLPLike(*users, *seed)
		default:
			log.Fatalf("unknown preset %q (want twitter or dblp)", *preset)
		}
	}
	g, _ := synth.Generate(cfg)
	if err := g.Validate(); err != nil {
		log.Fatalf("generator produced an invalid graph: %v", err)
	}
	// Close errors are checked on every written file: a deferred,
	// unchecked Close can silently truncate the output on a full disk.
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := g.WriteTo(f); err != nil {
		f.Close()
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	if *vocab != "" {
		vf, err := os.Create(*vocab)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := synth.BuildVocabulary(cfg).WriteTo(vf); err != nil {
			vf.Close()
			log.Fatal(err)
		}
		if err := vf.Close(); err != nil {
			log.Fatal(err)
		}
	}
	st := g.Stats()
	fmt.Printf("wrote %s (%s): %d users, %d friendship links, %d diffusion links, %d docs, %d words\n",
		*out, cfg.Name, st.Users, st.FriendLinks, st.DiffLinks, st.Docs, st.Words)
}

// seedSet reports whether -seed was passed explicitly.
func seedSet(fs *flag.FlagSet) bool {
	set := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "seed" {
			set = true
		}
	})
	return set
}
