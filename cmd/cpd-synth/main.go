// Command cpd-synth generates a synthetic social graph (Twitter-like or
// DBLP-like preset) and writes it — plus the themed vocabulary — to disk
// in the socialgraph text format.
//
// Usage:
//
//	cpd-synth -preset twitter -users 2000 -seed 42 -out twitter.graph -vocab twitter.vocab
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/synth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cpd-synth: ")
	var (
		preset = flag.String("preset", "twitter", "dataset preset: twitter | dblp")
		users  = flag.Int("users", 1000, "number of users")
		seed   = flag.Uint64("seed", 42, "generator seed")
		out    = flag.String("out", "", "output graph file (required)")
		vocab  = flag.String("vocab", "", "optional vocabulary output file")
	)
	flag.Parse()
	if *out == "" {
		log.Fatal("-out is required")
	}
	var cfg synth.Config
	switch *preset {
	case "twitter":
		cfg = synth.TwitterLike(*users, *seed)
	case "dblp":
		cfg = synth.DBLPLike(*users, *seed)
	default:
		log.Fatalf("unknown preset %q (want twitter or dblp)", *preset)
	}
	g, _ := synth.Generate(cfg)
	if err := g.Validate(); err != nil {
		log.Fatalf("generator produced an invalid graph: %v", err)
	}
	// Close errors are checked on every written file: a deferred,
	// unchecked Close can silently truncate the output on a full disk.
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := g.WriteTo(f); err != nil {
		f.Close()
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	if *vocab != "" {
		vf, err := os.Create(*vocab)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := synth.BuildVocabulary(cfg).WriteTo(vf); err != nil {
			vf.Close()
			log.Fatal(err)
		}
		if err := vf.Close(); err != nil {
			log.Fatal(err)
		}
	}
	st := g.Stats()
	fmt.Printf("wrote %s: %d users, %d friendship links, %d diffusion links, %d docs, %d words\n",
		*out, st.Users, st.FriendLinks, st.DiffLinks, st.Docs, st.Words)
}
