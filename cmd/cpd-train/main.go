// Command cpd-train trains a CPD model on a social graph file and saves
// the model — by default as a v1 binary snapshot (internal/store), the
// format the serving layer loads ~10x faster than JSON; -format v2 writes
// the 64-byte-aligned layout cpd-serve can memory-map for zero-copy
// serving, and -format json keeps the legacy encoding. Every reader in
// this repository sniffs all formats.
//
// With -resume, training continues from a saved snapshot instead of
// starting fresh: the stored assignments seed the sampler (core's
// Resume-from-snapshot path), and the graph may have grown new users,
// documents and links since the snapshot was taken.
//
// With -init plp, the sampler warm-starts from a parallel
// label-propagation partition of the friendship graph
// (internal/baselines): PLP's communities seed the document-community
// assignments, replacing the random initialization. Cheap (seconds even
// on large graphs), deterministic per seed, and it gives the Gibbs
// sampler a structurally sensible starting point. Only the default joint
// model supports it (attribute-augmented and no-joint-modeling variants
// initialize differently).
//
// With -sampler alias, the E-step runs the alias-table +
// Metropolis–Hastings samplers instead of the exact full-conditional
// scan — sub-linear in |C| and |Z| per draw, the right choice for large
// community/topic counts (see internal/core's package documentation for
// the guarantees each sampler makes). A resumed model keeps the sampler
// it was trained with.
//
// Usage:
//
//	cpd-train -graph twitter.graph -communities 50 -topics 25 -iters 30 -out model.snap
//	cpd-train -graph twitter.graph -communities 200 -topics 100 -sampler alias -out model.snap
//	cpd-train -graph twitter.graph -format v2 -out model.v2.snap
//	cpd-train -graph twitter.graph -format json -out model.json
//	cpd-train -graph twitter.graph -resume model.v2.snap -iters 10 -out model2.v2.snap
//	cpd-train -graph twitter.graph -init plp -iters 20 -out model.snap
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/socialgraph"
	"repro/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cpd-train: ")
	var (
		graphPath   = flag.String("graph", "", "input graph file (required)")
		communities = flag.Int("communities", 50, "number of communities |C|")
		topics      = flag.Int("topics", 25, "number of topics |Z|")
		iters       = flag.Int("iters", 30, "EM iterations T1")
		workers     = flag.Int("workers", 0, "E-step workers (0 = all cores, 1 = serial)")
		seed        = flag.Uint64("seed", 7, "sampler seed")
		rho         = flag.Float64("rho", 0, "membership prior (0 = paper default 50/|C|)")
		out         = flag.String("out", "", "model output file (required)")
		format      = flag.String("format", "binary", "model output format: binary (v1) | v2 (mmap-ready) | json")
		resume      = flag.String("resume", "", "continue training from this saved model snapshot (ignores -communities/-topics/-rho/-sampler)")
		initMode    = flag.String("init", "random", "sampler initialization: random | plp (warm-start from parallel label propagation)")
		sampler     = flag.String("sampler", "exact", "E-step sampler: exact (full conditional scan) | alias (alias-table + Metropolis-Hastings, sub-linear at large |C|/|Z|)")
	)
	flag.Parse()
	if *graphPath == "" || *out == "" {
		log.Fatal("-graph and -out are required")
	}
	f, err := os.Open(*graphPath)
	if err != nil {
		log.Fatal(err)
	}
	g, err := socialgraph.Read(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	var m *core.Model
	var diag *core.Diagnostics
	if *resume != "" {
		base, err := store.LoadFile(*resume)
		if err != nil {
			log.Fatal(err)
		}
		m, diag, err = core.TrainResumed(g, base, *iters, core.ResumeOptions{
			Workers: *workers,
			Seed:    *seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		*communities, *topics = m.Cfg.NumCommunities, m.Cfg.NumTopics
	} else if *initMode == "plp" {
		cfg := core.Config{
			NumCommunities: *communities,
			NumTopics:      *topics,
			EMIters:        *iters,
			Workers:        *workers,
			Seed:           *seed,
			Rho:            *rho,
			Sampler:        *sampler,
		}
		res := baselines.PLPGraph(g, baselines.PLPOptions{Seed: *seed})
		fmt.Printf("plp warm start: %d communities in %d sweeps (converged=%v)\n",
			res.Communities, res.Sweeps, res.Converged)
		m0 := baselines.WarmStartModel(g, cfg, res.Labels)
		m, diag, err = core.TrainResumed(g, m0, *iters, core.ResumeOptions{
			Workers: *workers,
			Seed:    *seed,
		})
		if err != nil {
			log.Fatal(err)
		}
	} else if *initMode == "random" {
		m, diag, err = core.Train(g, core.Config{
			NumCommunities: *communities,
			NumTopics:      *topics,
			EMIters:        *iters,
			Workers:        *workers,
			Seed:           *seed,
			Rho:            *rho,
			Sampler:        *sampler,
		})
		if err != nil {
			log.Fatal(err)
		}
	} else {
		log.Fatalf("unknown -init %q (want random or plp)", *initMode)
	}
	switch *format {
	case "binary", "v1":
		if err := store.Save(*out, m); err != nil {
			log.Fatal(err)
		}
	case "v2":
		if err := store.SaveV2(*out, m); err != nil {
			log.Fatal(err)
		}
	case "json":
		of, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		if err := m.Save(of); err != nil {
			of.Close()
			log.Fatal(err)
		}
		// An unchecked Close here can silently lose the tail of the model
		// on a full disk.
		if err := of.Close(); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown format %q (want binary, v2 or json)", *format)
	}
	fmt.Printf("trained |C|=%d |Z|=%d in %.1fs E-step + %.1fs M-step; model written to %s\n",
		*communities, *topics, diag.EStepSeconds, diag.MStepSeconds, *out)
}
