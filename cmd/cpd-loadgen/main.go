// Command cpd-loadgen replays a configurable query mix against a served
// CPD model and reports throughput plus latency percentiles — the repo's
// traffic baseline tool. It drives either a model snapshot in-process
// (the serving engine's ceiling, no network or JSON cost) or a live
// HTTP endpoint — a single cpd-serve / cpd-lens process, or a cpd-router
// front, which speaks the identical API over a whole replica fleet.
//
// Usage:
//
//	# In-process, closed loop: 8 workers, 30k requests, default mix.
//	cpd-loadgen -model model.snap -requests 30000
//
//	# Against a live endpoint, open loop at 2000 qps for 30 seconds.
//	cpd-loadgen -url http://localhost:8080 -model model.snap \
//	    -rate 2000 -duration 30s -mix rank=4,membership=3,diffusion=2,foldin=1
//
//	# Against a router fronting N replicas: same flags, router address.
//	cpd-loadgen -url http://localhost:9090 -model model.snap -duration 30s
//
//	# Reads plus observability traffic: a dashboard polling /api/quality
//	# and a Prometheus scraper on /metrics ride the same mix.
//	cpd-loadgen -url http://localhost:8080 -model model.snap \
//	    -mix rank=4,membership=3,quality=1,metrics=1 -duration 30s
//
// The -model snapshot is always required: it defines the id space queries
// are drawn from (users, words, communities). With -url the model itself
// stays local; only the generated queries travel.
//
// Closed loop (-rate 0) measures service latency under full back-pressure:
// each worker issues its next request when the previous one returns. Open
// loop (-rate > 0) fixes the arrival schedule and measures latency from
// the *scheduled* arrival, so queueing delay on a saturated server counts
// against it (no coordinated omission).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/router"
	"repro/internal/scenario"
	"repro/internal/serve"
	"repro/internal/store"
	"repro/internal/stream"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cpd-loadgen: ")
	var (
		modelPath = flag.String("model", "", "model snapshot (binary v1/v2 or JSON; required — defines the query id space)")
		vocabPath = flag.String("vocab", "", "optional vocabulary (in-process target only; enables labelled responses)")
		url       = flag.String("url", "", "drive a live endpoint at this base URL instead of the in-process engine")
		snapName  = flag.String("snapshot", "", "route queries to this named snapshot (default snapshot when empty)")
		useMmap   = flag.Bool("mmap", false, "serve the in-process engine from a memory-mapped v2 snapshot (zero-copy)")

		mixSpec     = flag.String("mix", "rank=4,membership=3,diffusion=2,foldin=1", "relative op weights; add ingest=N for a write mix, quality=N / metrics=N for observability-endpoint traffic")
		concurrency = flag.Int("concurrency", 8, "workers (closed loop) / max in-flight (open loop)")
		requests    = flag.Int("requests", 0, "total request count (0 = run for -duration)")
		duration    = flag.Duration("duration", 10*time.Second, "run length when -requests is 0")
		rate        = flag.Float64("rate", 0, "open-loop arrival rate per second (0 = closed loop)")
		seed        = flag.Uint64("seed", 1, "request-stream seed")

		rankWords    = flag.Int("rank-words", 2, "words per rank query")
		rankK        = flag.Int("rank-k", 10, "top-k communities per rank query")
		foldinDocs   = flag.Int("foldin-docs", 2, "documents per fold-in request")
		foldinLen    = flag.Int("foldin-words", 8, "words per fold-in document")
		foldinSweeps = flag.Int("foldin-sweeps", 10, "Gibbs sweeps per fold-in request")

		jsonOut = flag.Bool("json", false, "emit the report as JSON instead of the table")
	)
	flag.Parse()
	if *modelPath == "" {
		log.Fatal("-model is required (it defines the query id space)")
	}
	var m *core.Model
	var mapped *store.MappedModel
	var err error
	if *useMmap && *url == "" {
		if mapped, err = store.Open(*modelPath); err != nil {
			log.Fatal(err)
		}
		defer mapped.Close()
		m = mapped.Model
	} else if m, err = store.LoadFile(*modelPath); err != nil {
		log.Fatal(err)
	}

	mix, err := scenario.ParseMix(*mixSpec)
	if err != nil {
		log.Fatal(err)
	}
	opts := scenario.LoadOptions{
		Mix:   mix,
		Space: scenario.SpaceFromModel(m),

		Concurrency: *concurrency,
		Requests:    *requests,
		Duration:    *duration,
		Rate:        *rate,
		Seed:        *seed,

		RankWords:    *rankWords,
		RankK:        *rankK,
		FoldInDocs:   *foldinDocs,
		FoldInDocLen: *foldinLen,
		FoldInSweeps: *foldinSweeps,
	}

	var target scenario.Target
	if *url != "" {
		target = scenario.HTTPTarget{Base: *url, Snapshot: *snapName}
		fmt.Fprintf(os.Stderr, "target: %s (HTTP, snapshot=%q)\n", *url, *snapName)
	} else {
		var vocab *corpus.Vocabulary
		if *vocabPath != "" {
			if vocab, err = corpus.ReadVocabularyFile(*vocabPath); err != nil {
				log.Fatal(err)
			}
		}
		name := *snapName
		if name == "" {
			name = serve.DefaultSnapshot
		}
		engine := serve.NewMulti(serve.Options{Mmap: *useMmap})
		defer engine.Close()
		if mapped != nil {
			engine.SwapMapped(name, mapped, vocab)
		} else {
			engine.SwapNamed(name, m, vocab)
		}
		et := scenario.EngineTarget{Engine: engine, Snapshot: name}
		if mix[scenario.OpIngest] > 0 {
			// A write mix needs the streaming updater behind the engine: a
			// throwaway journal plus a background publish loop, so reads
			// run against live generation swaps exactly as on a real
			// -ingest server.
			dir, err := os.MkdirTemp("", "cpd-loadgen-*")
			if err != nil {
				log.Fatal(err)
			}
			defer os.RemoveAll(dir)
			j, err := stream.OpenJournal(filepath.Join(dir, "events.wal"), stream.JournalOptions{})
			if err != nil {
				log.Fatal(err)
			}
			defer j.Close()
			u, err := stream.NewUpdater(j, stream.Options{Engine: engine, Snapshot: name})
			if err != nil {
				log.Fatal(err)
			}
			defer u.Close()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			go u.Run(ctx)
			et.Updater = u
		}
		target = et
		fmt.Fprintf(os.Stderr, "target: %s (in-process engine, mapped=%v, |C|=%d |Z|=%d users=%d words=%d)\n",
			*modelPath, mapped != nil && mapped.Mapped(), m.Cfg.NumCommunities, m.Cfg.NumTopics, m.NumUsers, m.NumWords)
	}

	rep, err := scenario.RunLoad(target, opts)
	if err != nil {
		log.Fatal(err)
	}
	// Against a router front, pull the fleet view after the run: the
	// per-replica request/error/misroute split is where a sharded fleet's
	// routing problems show up, and the router is the only place that
	// sees them. A plain cpd-serve target has no "replicas" array and is
	// skipped.
	fleet := fetchFleetStats(*url)
	if *jsonOut {
		out := struct {
			*scenario.Report
			Fleet *router.Stats `json:"fleet,omitempty"`
		}{rep, fleet}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Print(rep.String())
	if fleet != nil {
		fmt.Print(fleetString(fleet))
	}
}

// fetchFleetStats fetches a router target's /api/stats; nil when the
// target is not a router (or unreachable).
func fetchFleetStats(url string) *router.Stats {
	if url == "" {
		return nil
	}
	resp, err := http.Get(strings.TrimRight(url, "/") + "/api/stats")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var st router.Stats
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&st) != nil || len(st.Replicas) == 0 {
		return nil
	}
	return &st
}

// fleetString renders the router's per-replica accounting under the load
// report.
func fleetString(st *router.Stats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "\nfleet: generation %d, %d/%d replicas healthy", st.Generation, st.Healthy, len(st.Replicas))
	if st.Sharded {
		fmt.Fprintf(&b, ", %d shards, %d misroutes", st.Shards, st.Misroutes)
	}
	b.WriteString("\n")
	for _, r := range st.Replicas {
		fmt.Fprintf(&b, "  %-12s gen %-4d requests %-8d errors %-6d", r.Name, r.Generation, r.Requests, r.Errors)
		if r.Shard != nil {
			fmt.Fprintf(&b, " misroutes %-6d shard %d/%d users [%d,%d)",
				r.Misroutes, r.Shard.Index, r.Shard.Count, r.Shard.UserLo, r.Shard.UserHi)
		}
		if r.Draining {
			b.WriteString(" draining")
		}
		if !r.Healthy {
			b.WriteString(" UNHEALTHY")
		}
		b.WriteString("\n")
	}
	return b.String()
}
