// Command cpd-viz exports profile-driven community diffusion
// visualizations (Fig. 7) from a trained model as Graphviz DOT or JSON.
//
// Usage:
//
//	cpd-viz -model model.json -vocab twitter.vocab -topic -1 -format dot > diffusion.dot
package main

import (
	"flag"
	"log"
	"os"

	"repro/internal/apps"
	"repro/internal/corpus"
	"repro/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cpd-viz: ")
	var (
		modelPath = flag.String("model", "", "trained model file (required)")
		vocabPath = flag.String("vocab", "", "optional vocabulary file for node labels")
		topic     = flag.Int("topic", -1, "topic to visualize (-1 aggregates over topics)")
		format    = flag.String("format", "dot", "output format: dot | json")
	)
	flag.Parse()
	if *modelPath == "" {
		log.Fatal("-model is required")
	}
	m, err := store.LoadFile(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	var vocab *corpus.Vocabulary
	if *vocabPath != "" {
		vocab, err = corpus.ReadVocabularyFile(*vocabPath)
		if err != nil {
			log.Fatal(err)
		}
	}
	if *topic >= m.Cfg.NumTopics {
		log.Fatalf("topic %d out of range (model has %d topics)", *topic, m.Cfg.NumTopics)
	}
	dg := apps.BuildDiffusionGraph(m, vocab, *topic)
	switch *format {
	case "dot":
		err = dg.WriteDOT(os.Stdout)
	case "json":
		err = dg.WriteJSON(os.Stdout)
	default:
		log.Fatalf("unknown format %q (want dot or json)", *format)
	}
	if err != nil {
		log.Fatal(err)
	}
}
