// Command cpd-experiments regenerates the paper's tables and figures
// (see README.md for the experiment index and how to run it). Output is
// plain aligned tables on stdout.
//
// Usage:
//
//	cpd-experiments -exp all -scale small -folds 3
//	cpd-experiments -exp fig4,fig9 -sweep 20,50,100,150
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/exp"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cpd-experiments: ")
	var (
		expFlag = flag.String("exp", "all", "comma-separated experiments: table3,fig3,fig3nc,fig4,fig5,table5,fig6,table6,fig7,fig8,fig9,fig10,fig11 or 'all'")
		scale   = flag.String("scale", "small", "dataset scale: tiny | small | medium")
		folds   = flag.Int("folds", 3, "cross-validation folds (paper uses 10)")
		iters   = flag.Int("iters", 15, "EM iterations for CPD-family models")
		workers = flag.Int("workers", 1, "training workers for grid models")
		sweep   = flag.String("sweep", "", "comma-separated |C| sweep (default 20,50,100,150)")
		topics  = flag.Int("topics", 25, "number of topics |Z|")
		seed    = flag.Uint64("seed", 0, "experiment seed (0 = default)")
		dotDir  = flag.String("dotdir", "", "directory for Fig 7 DOT exports (optional)")
	)
	flag.Parse()

	o := exp.Options{
		Folds:   *folds,
		EMIters: *iters,
		Workers: *workers,
		Topics:  *topics,
		Seed:    *seed,
	}
	switch *scale {
	case "tiny":
		o.Scale = exp.Tiny
	case "small":
		o.Scale = exp.Small
	case "medium":
		o.Scale = exp.Medium
	default:
		log.Fatalf("unknown scale %q", *scale)
	}
	if *sweep != "" {
		for _, s := range strings.Split(*sweep, ",") {
			c, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				log.Fatalf("bad sweep value %q", s)
			}
			o.CommunitySweep = append(o.CommunitySweep, c)
		}
	}

	wanted := map[string]bool{}
	for _, e := range strings.Split(*expFlag, ",") {
		wanted[strings.TrimSpace(e)] = true
	}
	all := wanted["all"]
	w := os.Stdout

	run := func(name string, fn func() []*exp.Table) {
		if !all && !wanted[name] {
			return
		}
		fmt.Fprintf(w, "\n######## %s ########\n", name)
		for _, t := range fn() {
			t.Fprint(w)
		}
	}

	run("table3", func() []*exp.Table { return []*exp.Table{exp.RunTable3(o)} })
	if all {
		// One union grid per dataset covers Figs. 3, 3(g,h), 4, 8 and 9
		// without re-training models per figure.
		fmt.Fprint(w, "\n######## grid figures (3, 3nc, 4, 8, 9) ########\n")
		for _, t := range exp.RunGridFigures(o) {
			t.Fprint(w)
		}
	}
	runUnlessAll := func(name string, fn func() []*exp.Table) {
		if all {
			return
		}
		run(name, fn)
	}
	runUnlessAll("fig3", func() []*exp.Table { return exp.RunFigure3(o) })
	runUnlessAll("fig3nc", func() []*exp.Table { return exp.RunFigure3Nonconformity(o) })
	runUnlessAll("fig4", func() []*exp.Table { return exp.RunFigure4(o) })
	run("fig5", func() []*exp.Table { return exp.RunFigure5(o) })
	run("table5", func() []*exp.Table { return []*exp.Table{exp.RunTable5(o)} })
	run("fig6", func() []*exp.Table { return exp.RunFigure6(o) })
	run("table6", func() []*exp.Table { return []*exp.Table{exp.RunTable6(o)} })
	run("fig7", func() []*exp.Table {
		writeFile := func(name string, render func(io.Writer) error) error {
			if err := os.MkdirAll(filepath.Dir(name), 0o755); err != nil {
				return err
			}
			f, err := os.Create(name)
			if err != nil {
				return err
			}
			if err := render(f); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		}
		if *dotDir == "" {
			return exp.RunFigure7(o, "", nil)
		}
		return exp.RunFigure7(o, *dotDir, writeFile)
	})
	runUnlessAll("fig8", func() []*exp.Table { return exp.RunFigure8(o) })
	runUnlessAll("fig9", func() []*exp.Table { return exp.RunFigure9(o) })
	run("fig10", func() []*exp.Table { return exp.RunFigure10(o) })
	run("fig11", func() []*exp.Table {
		tables, err := exp.RunFigure11(o)
		if err != nil {
			log.Fatalf("fig11: %v", err)
		}
		return tables
	})
}
