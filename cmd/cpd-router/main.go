// Command cpd-router is the distributed serving front: a stateless tier
// over N cpd-serve replicas that all pull the same publisher's snapshot
// generations. Membership and fold-in requests route to the replica
// owning the user (rendezvous hash, stable across fleet changes); rank
// and diffusion scatter to the fleet and gather with a partial top-K
// merge that is bit-identical to a single node answering from the same
// generation; community browsing proxies to the freshest replica. The
// query surface is cpd-serve's own JSON API, so every client — curl,
// cpd-lens -remote, cpd-loadgen -url — points at the router unchanged.
//
// Usage:
//
//	cpd-router -replica a=http://10.0.0.1:8080 -replica b=http://10.0.0.2:8080 -addr :9090
//
//	curl localhost:9090/api/user?id=42        # owner-routed
//	curl localhost:9090/api/rank?w=17&k=5     # scatter-gather merge
//	curl localhost:9090/api/stats             # per-replica health/generation/lag
//	curl localhost:9090/metrics               # cpd_router_* exposition
//
//	cpd-loadgen -url http://localhost:9090    # load-test through the router
//
// The router polls each replica's /api/generation to track health and
// generation lag; replicas that trail the fleet beyond -max-lag are
// marked lagging on /api/stats and /metrics but keep serving (stale
// answers beat no answers). A replica that dies mid-scatter degrades
// redundancy, not availability.
//
// Sharded fleets need no extra configuration: replicas started with
// cpd-serve -fetch-shard advertise their owned user range on
// /api/generation, and the router switches to shard-aware routing —
// membership to the owning shard's replicas (421 answers fail over),
// rank Members summed across shards, cross-shard diffusion and fold-in
// hydrated with /api/pirow rows from the owners. A replica that has been
// POSTed /api/drain leaves the preferred rotation until it restarts.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/router"
	"repro/internal/serve"
)

// replicaFlags collects repeated -replica name=url[@weight] values.
type replicaFlags []router.Replica

func (f *replicaFlags) String() string {
	parts := make([]string, len(*f))
	for i, r := range *f {
		parts[i] = r.Name + "=" + r.Base
		if r.Weight != 0 && r.Weight != 1 {
			parts[i] += "@" + strconv.FormatFloat(r.Weight, 'g', -1, 64)
		}
	}
	return strings.Join(parts, ",")
}

func (f *replicaFlags) Set(v string) error {
	name, base, ok := strings.Cut(v, "=")
	if !ok || name == "" || base == "" {
		return fmt.Errorf("replica spec %q is not name=url[@weight]", v)
	}
	weight := 1.0
	// The weight separator is the last '@' after the scheme's "://", so
	// user-info URLs (user@host) keep working as long as the weight is
	// explicit or absent.
	if at := strings.LastIndex(base, "@"); at > strings.Index(base, "://")+2 {
		w, err := strconv.ParseFloat(base[at+1:], 64)
		if err == nil {
			if w <= 0 {
				return fmt.Errorf("replica spec %q has non-positive weight", v)
			}
			base, weight = base[:at], w
		}
	}
	*f = append(*f, router.Replica{Name: name, Base: base, Weight: weight})
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("cpd-router: ")
	var replicas replicaFlags
	flag.Var(&replicas, "replica", "backend replica, name=url[@weight]; repeat per replica (required; the name is the stable rendezvous identity, the weight its share of owner-routed keys)")
	var (
		addr    = flag.String("addr", ":9090", "listen address")
		poll    = flag.Duration("poll-interval", time.Second, "replica health/generation poll period")
		timeout = flag.Duration("timeout", 10*time.Second, "backend request timeout")
		maxLag  = flag.Uint64("max-lag", 1, "generations a replica may trail the fleet before it is marked lagging")
	)
	flag.Parse()
	if len(replicas) == 0 {
		log.Fatal("at least one -replica name=url is required")
	}
	// A scatter multiplies every rank/diffusion request by the fleet size,
	// all aimed at a handful of hosts — http.DefaultTransport's 2 idle
	// conns per host would churn TCP setup under any real concurrency.
	transport := http.DefaultTransport.(*http.Transport).Clone()
	transport.MaxIdleConns = 256
	transport.MaxIdleConnsPerHost = 64
	rt, err := router.New(replicas, router.Options{
		Client:       &http.Client{Timeout: *timeout, Transport: transport},
		PollInterval: *poll,
		MaxLag:       *maxLag,
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go rt.Run(ctx)
	fmt.Printf("cpd-router listening on %s (%d replicas)\n", *addr, len(replicas))
	if err := serve.RunHTTP(*addr, rt.Handler()); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
}
