// Command cpd-rank answers profile-driven community ranking queries
// (Eq. 19) against a trained model: which communities are most likely to
// diffuse content about the query?
//
// Usage:
//
//	cpd-rank -model model.json -vocab twitter.vocab -k 5 "deep learning"
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"repro/internal/apps"
	"repro/internal/corpus"
	"repro/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cpd-rank: ")
	var (
		modelPath = flag.String("model", "", "trained model file (required)")
		vocabPath = flag.String("vocab", "", "vocabulary file (required)")
		k         = flag.Int("k", 5, "communities to return")
		raw       = flag.Bool("raw", false, "treat query tokens as raw vocabulary words (skip stemming)")
	)
	flag.Parse()
	if *modelPath == "" || *vocabPath == "" || flag.NArg() == 0 {
		log.Fatal("usage: cpd-rank -model m.json -vocab v.txt [-k 5] <query words>")
	}
	m, err := store.LoadFile(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	vocab, err := corpus.ReadVocabularyFile(*vocabPath)
	if err != nil {
		log.Fatal(err)
	}
	query := strings.Join(flag.Args(), " ")
	pipeline := corpus.DefaultPipeline()
	pipeline.MinDocTokens = 1
	if *raw {
		pipeline = corpus.Pipeline{MinDocTokens: 1}
	}
	ranked, err := apps.RankCommunitiesText(m, vocab, pipeline, query)
	if err != nil {
		log.Fatal(err)
	}
	if *k > len(ranked) {
		*k = len(ranked)
	}
	fmt.Printf("top %d communities to diffuse %q:\n", *k, query)
	for i := 0; i < *k; i++ {
		r := ranked[i]
		fmt.Printf("%2d. c%02d  score=%.5f  %s\n", i+1, r.Community, r.Score,
			apps.CommunityLabel(m, vocab, r.Community, 4))
	}
}
