// Command cpd-serve is the headless profile-serving API: it loads one or
// more trained model snapshots (binary v1/v2 or JSON) into a serve.Engine
// and exposes the typed query surface as JSON over HTTP — community
// profiles, user memberships, Eq. 19 ranking via the inverted index,
// per-topic diffusion probabilities, fold-in inference for unseen users,
// per-endpoint latency counters, and zero-downtime hot-swap.
//
// Usage:
//
//	# Single model, heap-loaded.
//	cpd-serve -model model.snap -vocab data.vocab -addr :8080
//
//	# v2 snapshot served zero-copy from a memory mapping, pprof on.
//	cpd-serve -model model.v2.snap -mmap -pprof
//
//	# Multiple named snapshots (e.g. per-region models).
//	cpd-serve -model eu=models/eu.v2.snap -model us=models/us.v2.snap -mmap
//
//	curl localhost:8080/api/communities
//	curl 'localhost:8080/api/rank?q=deep+learning&k=5&snapshot=eu'
//	curl 'localhost:8080/api/user?id=42'
//	curl -d '{"docs":[[17,204,9]],"seed":1}' localhost:8080/api/foldin
//	curl -X POST localhost:8080/api/reload     # re-read every -model path
//	curl localhost:8080/api/snapshots
//	curl localhost:8080/api/stats              # latency + RSS + mapped/heap bytes
//
// -model may repeat; "name=path" serves the snapshot under that name
// (query it with ?snapshot=name), a bare "path" serves as "default". With
// -mmap, v2 snapshots are memory-mapped and served zero-copy — load is
// O(1) in model size and a hot-swap never copies the matrices; v1/JSON
// files fall back to the copying loader. POST /api/reload re-reads the
// paths the server was started with (clients cannot point it at other
// files) and swaps each model in atomically; in-flight queries finish on
// the snapshot they started with. -pprof exposes net/http/pprof under
// /debug/pprof/. The server shuts down gracefully on SIGINT/SIGTERM.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"strings"

	"repro/internal/corpus"
	"repro/internal/serve"
)

// modelSpec is one -model flag value: a snapshot name and its path.
type modelSpec struct{ name, path string }

// modelFlags collects repeated -model values.
type modelFlags []modelSpec

func (f *modelFlags) String() string {
	parts := make([]string, len(*f))
	for i, s := range *f {
		parts[i] = s.name + "=" + s.path
	}
	return strings.Join(parts, ",")
}

func (f *modelFlags) Set(v string) error {
	name, path := serve.DefaultSnapshot, v
	if i := strings.IndexByte(v, '='); i >= 0 {
		name, path = v[:i], v[i+1:]
	}
	if name == "" || path == "" {
		return fmt.Errorf("model spec %q is not [name=]path", v)
	}
	for _, s := range *f {
		if s.name == name {
			return fmt.Errorf("snapshot name %q given twice", name)
		}
	}
	*f = append(*f, modelSpec{name: name, path: path})
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("cpd-serve: ")
	var models modelFlags
	flag.Var(&models, "model", "model snapshot, [name=]path; repeat for multiple named snapshots (required)")
	var (
		vocabPath = flag.String("vocab", "", "vocabulary file, shared by all snapshots (enables free-text rank queries)")
		addr      = flag.String("addr", ":8080", "listen address")
		postings  = flag.Int("postings", 0, "rank-index posting-list length per word (0 = default)")
		workers   = flag.Int("foldin-workers", 0, "fold-in worker pool size (0 = default)")
		shards    = flag.Int("user-shards", 0, "user-index shard count (0 = default)")
		useMmap   = flag.Bool("mmap", false, "serve v2 snapshots zero-copy from a memory mapping")
		usePprof  = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
	)
	flag.Parse()
	if len(models) == 0 {
		log.Fatal("-model is required")
	}
	engine := serve.NewMulti(serve.Options{
		PostingsPerWord: *postings,
		FoldInWorkers:   *workers,
		UserShards:      *shards,
		Mmap:            *useMmap,
	})
	defer engine.Close()
	load := func() error {
		// One shared vocabulary, parsed once per load, not once per slot.
		var vocab *corpus.Vocabulary
		if *vocabPath != "" {
			var err error
			if vocab, err = corpus.ReadVocabularyFile(*vocabPath); err != nil {
				return err
			}
		}
		for _, spec := range models {
			v, err := engine.LoadSnapshot(spec.name, spec.path, vocab)
			if err != nil {
				return fmt.Errorf("loading %s (%s): %w", spec.name, spec.path, err)
			}
			log.Printf("loaded %s = %s (version %d)", spec.name, spec.path, v)
		}
		return nil
	}
	if err := load(); err != nil {
		log.Fatal(err)
	}
	reload := func() error {
		if err := load(); err != nil {
			log.Printf("reload failed: %v", err)
			return err
		}
		return nil
	}
	var handler http.Handler = serve.APIHandler(engine, reload)
	if *usePprof {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}
	for _, info := range engine.SnapshotsInfo() {
		fmt.Printf("cpd-serve snapshot %s: %d users, %d words, mapped=%v (%d mapped / %d heap bytes)\n",
			info.Name, info.Users, info.Words, info.Mapped, info.MappedBytes, info.HeapBytes)
	}
	fmt.Printf("cpd-serve listening on %s (%d snapshots)\n", *addr, len(models))
	if err := serve.RunHTTP(*addr, handler); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	fmt.Println("shut down cleanly")
}
