// Command cpd-serve is the headless profile-serving API: it loads one or
// more trained model snapshots (binary v1/v2 or JSON) into a serve.Engine
// and exposes the typed query surface as JSON over HTTP — community
// profiles, user memberships, Eq. 19 ranking via the inverted index,
// per-topic diffusion probabilities, fold-in inference for unseen users,
// per-endpoint latency counters, and zero-downtime hot-swap. With -ingest
// it also runs the streaming write path: live events are journaled,
// folded in over delta windows, and republished as fresh snapshot
// generations without a restart.
//
// Usage:
//
//	# Single model, heap-loaded.
//	cpd-serve -model model.snap -vocab data.vocab -addr :8080
//
//	# v2 snapshot served zero-copy from a memory mapping, pprof on.
//	cpd-serve -model model.v2.snap -mmap -pprof
//
//	# Multiple named snapshots (e.g. per-region models).
//	cpd-serve -model eu=models/eu.v2.snap -model us=models/us.v2.snap -mmap
//
//	# Live ingest: journal to events.wal, publish every 256 events or 2s.
//	cpd-serve -model model.v2.snap -ingest events.wal -ingest-dir snapshots/
//
//	# Replica mode: no local model, pull generations from a publisher —
//	# a shared snapshot directory or a publisher's /api/generations URL.
//	cpd-serve -fetch /shared/snapshots -mmap
//	cpd-serve -fetch http://publisher:8080 -fetch-dir /var/cache/cpd -mmap
//
//	curl localhost:8080/api/communities
//	curl 'localhost:8080/api/rank?q=deep+learning&k=5&snapshot=eu'
//	curl 'localhost:8080/api/user?id=42'
//	curl -d '{"docs":[[17,204,9]],"seed":1}' localhost:8080/api/foldin
//	curl -d '[{"type":"add-user"},{"type":"add-doc","user":500,"words":[17,204]}]' localhost:8080/api/ingest
//	curl localhost:8080/api/ingest/status      # freshness / publish lag
//	curl -X POST localhost:8080/api/reload     # re-read every -model path
//	curl localhost:8080/api/snapshots
//	curl localhost:8080/api/stats              # latency + RSS + ingest gauge
//	curl localhost:8080/api/quality            # per-generation structural quality
//	curl localhost:8080/metrics                # Prometheus text exposition
//
// -model may repeat; "name=path" serves the snapshot under that name
// (query it with ?snapshot=name), a bare "path" serves as "default". With
// -mmap, v2 snapshots are memory-mapped and served zero-copy. POST
// /api/reload re-reads the paths the server was started with. -pprof
// exposes net/http/pprof under /debug/pprof/.
//
// With -ingest, POST /api/ingest accepts typed event batches (add-user /
// add-edge / add-doc / diffusion) that are appended to the CRC'd journal
// and become query-visible within one publish cycle; /api/ingest/status
// and the "ingest" section of /api/stats report generation and lag. On
// SIGINT/SIGTERM the server drains gracefully: ingest closes (503), the
// journal is flushed, a final snapshot generation is published, and only
// then does the HTTP listener shut down.
//
// With -fetch, the process is a serving replica: it polls a snapshot
// source (directory or publisher URL), CRC-verifies each new generation,
// warms it and hot-swaps it in — the pull half of snapshot distribution
// behind cmd/cpd-router. A publisher started with -ingest serves its
// generations to such replicas on /api/generations (manifest) and
// /api/generations/file. -model is optional in replica mode.
//
// -quality-every N scores every N-th published generation with the
// structural metrics of internal/quality (modularity, coverage,
// conductance, size distribution, drift); reports accumulate on
// /api/quality and export as cpd_quality_* gauges on /metrics.
// -quality-plp adds the parallel label-propagation baseline as the
// comparison row (needs a friendship graph: -ingest-graph and/or
// streamed add-edge events).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/corpus"
	"repro/internal/serve"
	"repro/internal/socialgraph"
	"repro/internal/stream"
)

// modelSpec is one -model flag value: a snapshot name and its path.
type modelSpec struct{ name, path string }

// modelFlags collects repeated -model values.
type modelFlags []modelSpec

func (f *modelFlags) String() string {
	parts := make([]string, len(*f))
	for i, s := range *f {
		parts[i] = s.name + "=" + s.path
	}
	return strings.Join(parts, ",")
}

func (f *modelFlags) Set(v string) error {
	name, path := serve.DefaultSnapshot, v
	if i := strings.IndexByte(v, '='); i >= 0 {
		name, path = v[:i], v[i+1:]
	}
	if name == "" || path == "" {
		return fmt.Errorf("model spec %q is not [name=]path", v)
	}
	for _, s := range *f {
		if s.name == name {
			return fmt.Errorf("snapshot name %q given twice", name)
		}
	}
	*f = append(*f, modelSpec{name: name, path: path})
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("cpd-serve: ")
	var models modelFlags
	flag.Var(&models, "model", "model snapshot, [name=]path; repeat for multiple named snapshots (required)")
	var (
		vocabPath = flag.String("vocab", "", "vocabulary file, shared by all snapshots (enables free-text rank queries)")
		addr      = flag.String("addr", ":8080", "listen address")
		postings  = flag.Int("postings", 0, "rank-index posting-list length per word (0 = default)")
		workers   = flag.Int("foldin-workers", 0, "fold-in worker pool size (0 = default)")
		shards    = flag.Int("user-shards", 0, "user-index shard count (0 = default)")
		useMmap   = flag.Bool("mmap", false, "serve v2 snapshots zero-copy from a memory mapping")
		usePprof  = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")

		ingestPath   = flag.String("ingest", "", "event journal path; enables POST /api/ingest and the streaming updater")
		ingestSlot   = flag.String("ingest-snapshot", serve.DefaultSnapshot, "snapshot slot live ingest updates")
		ingestDir    = flag.String("ingest-dir", "", "directory for published snapshot generations (default: alongside the journal)")
		ingestWindow = flag.Int("ingest-window", 256, "delta window: publish after this many pending events")
		ingestEvery  = flag.Duration("ingest-interval", 2*time.Second, "publish pending events at latest this often")
		gibbsEvery   = flag.Int("ingest-gibbs-every", 0, "run a delta-Gibbs pass every N publishes (needs -ingest-graph; 0 = fold-in only)")
		gibbsSweeps  = flag.Int("ingest-gibbs-sweeps", 2, "EM iterations per delta-Gibbs pass")
		ingestGraph  = flag.String("ingest-graph", "", "base training graph, enables the delta-Gibbs refinement")
		fullRebuild  = flag.Bool("ingest-full-rebuild", false, "pin every publish to the full rebuild path (differential baseline / escape hatch; default is the O(changed) incremental publish)")
		qualityEvery = flag.Int("quality-every", 0, "score every N-th published generation with structural quality metrics (0 = off)")
		qualityPLP   = flag.Bool("quality-plp", false, "also score the parallel label-propagation baseline as the /api/quality comparison row")
		ingestShards = flag.Int("ingest-shards", 0, "also publish each generation as an N-shard group (manifest + global + per-user-range shard files; 0 = off)")

		fetchSource   = flag.String("fetch", "", "replica mode: snapshot source to poll — a directory or a publisher base URL")
		fetchDir      = flag.String("fetch-dir", "", "local cache for generations fetched over HTTP (required for URL sources)")
		fetchSlot     = flag.String("fetch-snapshot", serve.DefaultSnapshot, "snapshot slot fetched generations are promoted into")
		fetchInterval = flag.Duration("fetch-interval", 2*time.Second, "snapshot source poll period")
		fetchKeep     = flag.Int("fetch-keep", 2, "fetched generations retained in the local cache")
		fetchShard    = flag.Int("fetch-shard", -1, "shard-owning replica mode: fetch only the global file plus this shard of sharded generations (-1 = full snapshots)")
	)
	flag.Parse()
	if len(models) == 0 && *fetchSource == "" {
		log.Fatal("-model is required (or -fetch for replica mode)")
	}
	engine := serve.NewMulti(serve.Options{
		PostingsPerWord: *postings,
		FoldInWorkers:   *workers,
		UserShards:      *shards,
		Mmap:            *useMmap,
	})
	defer engine.Close()
	var vocab *corpus.Vocabulary
	load := func() error {
		// One shared vocabulary, parsed once per load, not once per slot.
		if *vocabPath != "" {
			var err error
			if vocab, err = corpus.ReadVocabularyFile(*vocabPath); err != nil {
				return err
			}
		}
		for _, spec := range models {
			v, err := engine.LoadSnapshot(spec.name, spec.path, vocab)
			if err != nil {
				return fmt.Errorf("loading %s (%s): %w", spec.name, spec.path, err)
			}
			log.Printf("loaded %s = %s (version %d)", spec.name, spec.path, v)
		}
		return nil
	}
	if err := load(); err != nil {
		log.Fatal(err)
	}
	reload := func() error {
		if err := load(); err != nil {
			log.Printf("reload failed: %v", err)
			return err
		}
		return nil
	}

	mux := http.NewServeMux()
	mux.Handle("/", serve.APIHandler(engine, reload))

	// Replica mode: pull published generations from the snapshot source,
	// verify, warm and hot-swap them; health rides the standard surfaces
	// (/api/stats "replica" section, cpd_replica_* gauges on /metrics).
	if *fetchSource != "" {
		fetcher, err := serve.NewFetcher(engine, serve.FetchOptions{
			Source:   *fetchSource,
			Dir:      *fetchDir,
			Snapshot: *fetchSlot,
			Vocab:    vocab,
			Interval: *fetchInterval,
			Keep:     *fetchKeep,
			Sharded:  *fetchShard >= 0,
			Shard:    *fetchShard,
		})
		if err != nil {
			log.Fatal(err)
		}
		engine.SetReplicaStats(func() any { return fetcher.Status() })
		engine.AddMetricsCollector(fetcher.WriteMetrics)
		// Fetch synchronously once so the replica comes up serving the
		// current generation; an empty source just means "wait for one".
		if gen, err := fetcher.Poll(); err != nil {
			log.Printf("initial fetch: %v (will keep polling)", err)
		} else if gen > 0 {
			log.Printf("fetched generation %d from %s", gen, *fetchSource)
		}
		fctx, fcancel := context.WithCancel(context.Background())
		defer fcancel()
		go fetcher.Run(fctx)
	}

	// Streaming write path: journal + updater + ingest endpoints.
	var updater *stream.Updater
	var journal *stream.Journal
	if *ingestPath != "" {
		var baseGraph *socialgraph.Graph
		if *ingestGraph != "" {
			f, err := os.Open(*ingestGraph)
			if err != nil {
				log.Fatal(err)
			}
			if baseGraph, err = socialgraph.Read(f); err != nil {
				f.Close()
				log.Fatal(err)
			}
			f.Close()
		}
		dir := *ingestDir
		if dir == "" {
			dir = filepath.Dir(*ingestPath)
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			log.Fatal(err)
		}
		var err error
		journal, err = stream.OpenJournal(*ingestPath, stream.JournalOptions{})
		if err != nil {
			log.Fatal(err)
		}
		defer journal.Close()
		updater, err = stream.NewUpdater(journal, stream.Options{
			Engine:       engine,
			Snapshot:     *ingestSlot,
			Vocab:        vocab,
			Dir:          dir,
			WindowEvents: *ingestWindow,
			Interval:     *ingestEvery,
			GibbsEvery:   *gibbsEvery,
			GibbsSweeps:  *gibbsSweeps,
			BaseGraph:    baseGraph,
			Mmap:         *useMmap,
			FullRebuild:  *fullRebuild,
			Quality:      *qualityEvery,
			QualityPLP:   *qualityPLP,
			Shards:       *ingestShards,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer updater.Close()
		engine.SetIngestStats(func() any { return updater.Status() })
		// /metrics covers the write path too: ingest counters and
		// publish-latency/lag histograms ride behind the engine's families.
		engine.AddMetricsCollector(updater.WriteMetrics)
		// A restored journal/checkpoint may carry stream state the slot's
		// on-disk model predates; publish it up front so previously
		// ingested users are query-visible from the first request.
		if st := updater.Status(); st.PendingEvents > 0 || st.Users > st.BaseUsers || st.StreamDocs > 0 {
			if info, err := updater.Publish(); err != nil {
				log.Fatalf("publishing restored stream state: %v", err)
			} else if info != nil {
				log.Printf("published restored stream state as generation %d (%d users)", info.Generation, info.Users)
			}
		}
		mux.Handle("/api/ingest", updater.Handler())
		mux.Handle("/api/ingest/status", updater.Handler())
		// Any publisher is a snapshot origin: replicas started with
		// -fetch <this server's URL> pull generations from here — full
		// files on /api/generations*, shard groups on /api/shards*.
		snaps := stream.SnapshotServer(dir)
		mux.Handle("/api/generations", snaps)
		mux.Handle("/api/generations/file", snaps)
		mux.Handle("/api/shards", snaps)
		mux.Handle("/api/shards/manifest", snaps)
		mux.Handle("/api/shards/file", snaps)
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		go func() {
			if err := updater.Run(ctx); err != nil && ctx.Err() == nil {
				log.Printf("updater stopped: %v", err)
			}
		}()
		st := updater.Status()
		fmt.Printf("cpd-serve ingest on %s (slot %s, %d pending, generation %d)\n",
			*ingestPath, *ingestSlot, st.PendingEvents, st.Generation)
	}

	var handler http.Handler = mux
	if *usePprof {
		pmux := http.NewServeMux()
		pmux.Handle("/", handler)
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = pmux
	}
	for _, info := range engine.SnapshotsInfo() {
		fmt.Printf("cpd-serve snapshot %s: %d users, %d words, mapped=%v (%d mapped / %d heap bytes)\n",
			info.Name, info.Users, info.Words, info.Mapped, info.MappedBytes, info.HeapBytes)
	}
	fmt.Printf("cpd-serve listening on %s (%d snapshots)\n", *addr, len(models))
	// Graceful drain: on SIGINT/SIGTERM, before the listener closes, stop
	// accepting ingest, flush the journal and publish a final generation —
	// nothing accepted is ever lost to a shutdown.
	drain := func() {
		if updater == nil {
			return
		}
		if err := updater.Drain(); err != nil {
			log.Printf("drain failed: %v", err)
			return
		}
		fmt.Printf("drained: final generation %d published\n", updater.Generation())
	}
	if err := serve.RunHTTPWithShutdown(*addr, handler, drain); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	fmt.Println("shut down cleanly")
}
