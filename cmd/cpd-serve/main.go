// Command cpd-serve is the headless profile-serving API: it loads a
// trained model snapshot (binary or JSON) into a serve.Engine and exposes
// the typed query surface as JSON over HTTP — community profiles, user
// memberships, Eq. 19 ranking via the inverted index, per-topic diffusion
// probabilities, fold-in inference for unseen users, per-endpoint latency
// counters, and zero-downtime hot-swap.
//
// Usage:
//
//	cpd-serve -model model.snap -vocab data.vocab -addr :8080
//
//	curl localhost:8080/api/communities
//	curl 'localhost:8080/api/rank?q=deep+learning&k=5'
//	curl 'localhost:8080/api/user?id=42'
//	curl -d '{"docs":[[17,204,9]],"seed":1}' localhost:8080/api/foldin
//	curl -X POST localhost:8080/api/reload     # re-read -model/-vocab paths
//	curl localhost:8080/api/stats
//
// POST /api/reload re-reads the paths the server was started with (clients
// cannot point it at other files) and swaps the model in atomically;
// in-flight queries finish on the snapshot they started with. The server
// shuts down gracefully on SIGINT/SIGTERM.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"repro/internal/corpus"
	"repro/internal/serve"
	"repro/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cpd-serve: ")
	var (
		modelPath = flag.String("model", "", "trained model file, binary snapshot or JSON (required)")
		vocabPath = flag.String("vocab", "", "vocabulary file (enables free-text rank queries)")
		addr      = flag.String("addr", ":8080", "listen address")
		postings  = flag.Int("postings", 0, "rank-index posting-list length per word (0 = default)")
		workers   = flag.Int("foldin-workers", 0, "fold-in worker pool size (0 = default)")
	)
	flag.Parse()
	if *modelPath == "" {
		log.Fatal("-model is required")
	}
	model, err := store.LoadFile(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	var vocab *corpus.Vocabulary
	if *vocabPath != "" {
		if vocab, err = corpus.ReadVocabularyFile(*vocabPath); err != nil {
			log.Fatal(err)
		}
	}
	engine := serve.New(model, vocab, serve.Options{
		PostingsPerWord: *postings,
		FoldInWorkers:   *workers,
	})
	defer engine.Close()
	reload := func() error {
		v, err := engine.Reload(*modelPath, *vocabPath)
		if err != nil {
			log.Printf("reload failed: %v", err)
			return err
		}
		log.Printf("reloaded %s (version %d)", *modelPath, v)
		return nil
	}
	fmt.Printf("cpd-serve listening on %s (|C|=%d |Z|=%d, %d users, %d words)\n",
		*addr, model.Cfg.NumCommunities, model.Cfg.NumTopics, model.NumUsers, model.NumWords)
	if err := serve.RunHTTP(*addr, serve.APIHandler(engine, reload)); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	fmt.Println("shut down cleanly")
}
