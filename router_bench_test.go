package repro

// Benchmark for the distributed serving tier (internal/router): the
// scatter-gather rank path over an in-process fleet of replicas, each
// serving the serving-scale synthetic model through the real JSON API.
// Compared against BenchmarkServeRank's single-engine numbers, the delta
// is the router's whole overhead: fan-out, JSON decode, and the partial
// top-K merge.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/router"
	"repro/internal/serve"
)

func BenchmarkRouterScatterGather(b *testing.B) {
	m := serveBenchModel(b)
	const replicas = 3
	var reps []router.Replica
	for i := 0; i < replicas; i++ {
		e := serve.New(m, nil, serve.Options{})
		defer e.Close()
		srv := httptest.NewServer(serve.APIHandler(e, nil))
		defer srv.Close()
		reps = append(reps, router.Replica{Name: fmt.Sprintf("r%d", i), Base: srv.URL})
	}
	rt, err := router.New(reps, router.Options{Client: &http.Client{Timeout: 10 * time.Second}})
	if err != nil {
		b.Fatal(err)
	}
	front := httptest.NewServer(rt.Handler())
	defer front.Close()
	client := front.Client()

	queries := make([]string, 64)
	for i := range queries {
		queries[i] = fmt.Sprintf("%s/api/rank?w=%d,%d&k=10", front.URL, i*701%50000, i*337%50000)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			resp, err := client.Get(queries[i%len(queries)])
			if err != nil {
				b.Fatal(err)
			}
			var res serve.RankResult
			if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK || len(res.Entries) == 0 {
				b.Fatalf("status %d, %d entries", resp.StatusCode, len(res.Entries))
			}
			i++
		}
	})
}
