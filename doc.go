// Package repro is a from-scratch Go reproduction of "From Community
// Detection to Community Profiling" (Cai, Zheng, Zhu, Chang, Huang;
// PVLDB 10(6), 2017): the joint Community Profiling and Detection (CPD)
// model, its Pólya-Gamma-augmented collapsed Gibbs / variational-EM
// inference with a knapsack-balanced parallel E-step, the four published
// baselines it is evaluated against (PMTLM, WTM, CRM, COLD) plus the two
// aggregation baselines, the three community-level applications
// (community-aware diffusion, profile-driven ranking, profile-driven
// visualization), a benchmark harness that regenerates every table and
// figure of the paper's evaluation section on synthetic Twitter-like and
// DBLP-like workloads, and an online serving layer: versioned binary
// model snapshots (internal/store) — a streaming v1 codec plus the
// 64-byte-aligned v2 layout that store.Open serves zero-copy from a
// memory mapping — and a concurrent query engine hosting named,
// refcount-hot-swappable snapshots with a sharded user index, an
// inverted rank index and fold-in inference for unseen users
// (internal/serve), the SocialLens browser UI on top of it
// (internal/lens), and the cpd-serve / cpd-lens servers. A streaming
// write path (internal/stream) keeps served models fresh without full
// retrains: a CRC'd append-only event journal with crash-safe replay,
// watermark and compaction; an incremental updater that folds affected
// users in per delta window and periodically re-estimates them with a
// resumable delta-Gibbs pass (core.NewEngineFromModel + dirty-set
// sweeps); and a publisher that promotes v2 snapshot generations into
// the serving engine's hot-swap slots (cmd/cpd-serve -ingest, with the
// cpd-stream backfill CLI and cpd-train -resume on the same core path).
// A distributed serving tier (internal/router + cmd/cpd-router) fronts
// N cpd-serve replicas: membership and fold-in route to the owning
// replica by rendezvous user-hash, rank and diffusion scatter-gather
// with an exact partial top-K merge, and replicas pull generation
// snapshots from the publisher (serve.Fetcher: CRC-verified, warmed,
// atomically swapped) with per-replica health/generation/lag on the
// router's stats and metrics. Sharded snapshots (internal/shard) split
// a v2 generation into a CRC-manifested group — one global file plus N
// per-user-range shard files — so each replica maps only the users it
// owns (cpd-serve -ingest-shards / -fetch-shard); the router routes by
// shard containment, sums per-shard member counts in its rank merge,
// and hydrates cross-shard fold-in/diffusion rows from the owners. A
// workload harness (internal/scenario) adds named seeded scenario
// presets across degree/membership/vocabulary/diffusion regimes —
// including streaming ingest regimes with replay-equals-batch and
// freshness invariants, and multi-replica and sharded-fleet presets
// pinning routed-vs-single-node bit-equality
// across a live generation rollout — an end-to-end regression runner
// with golden metric files, and the cpd-loadgen traffic generator that
// reports QPS and latency percentiles (reads and ingest writes) against
// a served model or a router front.
//
// See README.md for a quickstart, the package map, and how to run the
// experiments. The root package holds the per-table/per-figure benchmarks
// (bench_test.go); all implementation lives under internal/.
package repro
