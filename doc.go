// Package repro is a from-scratch Go reproduction of "From Community
// Detection to Community Profiling" (Cai, Zheng, Zhu, Chang, Huang;
// PVLDB 10(6), 2017): the joint Community Profiling and Detection (CPD)
// model, its Pólya-Gamma-augmented collapsed Gibbs / variational-EM
// inference with a knapsack-balanced parallel E-step, the four published
// baselines it is evaluated against (PMTLM, WTM, CRM, COLD) plus the two
// aggregation baselines, the three community-level applications
// (community-aware diffusion, profile-driven ranking, profile-driven
// visualization), a benchmark harness that regenerates every table and
// figure of the paper's evaluation section on synthetic Twitter-like and
// DBLP-like workloads, and an online serving layer: versioned binary
// model snapshots (internal/store) — a streaming v1 codec plus the
// 64-byte-aligned v2 layout that store.Open serves zero-copy from a
// memory mapping — and a concurrent query engine hosting named,
// refcount-hot-swappable snapshots with a sharded user index, an
// inverted rank index and fold-in inference for unseen users
// (internal/serve), the SocialLens browser UI on top of it
// (internal/lens), and the cpd-serve / cpd-lens servers. A workload
// harness (internal/scenario) adds named seeded scenario presets across
// degree/membership/vocabulary/diffusion regimes, an end-to-end
// regression runner with golden metric files, and the cpd-loadgen
// traffic generator that reports QPS and latency percentiles against a
// served model.
//
// See README.md for a quickstart, the package map, and how to run the
// experiments. The root package holds the per-table/per-figure benchmarks
// (bench_test.go); all implementation lives under internal/.
package repro
